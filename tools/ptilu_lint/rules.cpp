// Rule implementations and report rendering for ptilu-lint. See lint.hpp
// for the rule table and docs/STATIC_ANALYSIS.md §4 for the rationale.
#include "lint.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>

#include "lexer.hpp"

namespace ptilu::lint {

namespace {

const char* const kUnorderedIter = "determinism-unordered-iter";
const char* const kBannedCalls = "determinism-banned-calls";
const char* const kCollectiveTag = "spmd-collective-tag";
const char* const kPhaseCoverage = "spmd-phase-coverage";
const char* const kAssertMacro = "assert-macro";
const char* const kFloatInModel = "float-in-model";

/// Which rule families apply to a file, derived from its repo-relative
/// path. src/sim/ is the machine *implementation* — the SPMD protocol
/// rules (collective-tag, phase-coverage) apply to protocol *users*, not
/// to the mechanism itself, which declares/charges on behalf of callers.
struct Scope {
  bool in_src = false;
  bool in_include = false;
  bool in_sim = false;     // src/sim/ or include/ptilu/sim/
  bool driver = false;     // src/ minus src/sim/
};

bool starts_with(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

Scope classify(std::string path) {
  std::replace(path.begin(), path.end(), '\\', '/');
  Scope scope;
  scope.in_src = starts_with(path, "src/");
  scope.in_include = starts_with(path, "include/");
  scope.in_sim =
      starts_with(path, "src/sim/") || starts_with(path, "include/ptilu/sim/");
  scope.driver = scope.in_src && !starts_with(path, "src/sim/");
  return scope;
}

bool is_ident(const Token& t, const char* text) {
  return t.kind == TokKind::kIdent && t.text == text;
}
bool is_punct(const Token& t, const char* text) {
  return t.kind == TokKind::kPunct && t.text == text;
}

/// Index of the token after the ">" matching the "<" at `open`. Works on
/// single-char ">" tokens (the lexer never fuses ">>"), so nested template
/// argument lists close one level per token.
std::size_t skip_angles(const std::vector<Token>& toks, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (is_punct(toks[i], "<")) ++depth;
    if (is_punct(toks[i], ">") && --depth == 0) return i + 1;
  }
  return toks.size();
}

/// Index of the ")" matching the "(" at `open` (or toks.size()).
std::size_t match_paren(const std::vector<Token>& toks, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (is_punct(toks[i], "(")) ++depth;
    if (is_punct(toks[i], ")") && --depth == 0) return i;
  }
  return toks.size();
}

/// Index of the "]" matching the "[" at `open` (or toks.size()).
std::size_t match_bracket(const std::vector<Token>& toks, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (is_punct(toks[i], "[")) ++depth;
    if (is_punct(toks[i], "]") && --depth == 0) return i;
  }
  return toks.size();
}

bool member_access_before(const std::vector<Token>& toks, std::size_t i) {
  return i > 0 && (is_punct(toks[i - 1], ".") || is_punct(toks[i - 1], "->"));
}

void add_finding(std::vector<Finding>& out, const LexedSource& lexed,
                 const std::string& rule, const std::string& file, const Token& at,
                 std::string message) {
  out.push_back(Finding{rule, file, at.line, at.col, std::move(message),
                        is_allowed(lexed.allowed, rule, at.line)});
}

// ---------------------------------------------------------------------------
// determinism-unordered-iter
// ---------------------------------------------------------------------------

void rule_unordered_iter(const std::string& file, const LexedSource& lexed,
                         std::vector<Finding>& out) {
  const std::vector<Token>& toks = lexed.tokens;

  // Pass 1: names declared with an unordered container type — including
  // wrapped ones (std::vector<std::unordered_map<...>> ghost), where the
  // outer template's extra ">" tokens follow the inner match.
  std::set<std::string> unordered_names;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!is_ident(toks[i], "unordered_map") && !is_ident(toks[i], "unordered_set"))
      continue;
    if (!is_punct(toks[i + 1], "<")) continue;
    std::size_t j = skip_angles(toks, i + 1);
    while (j < toks.size() && is_punct(toks[j], ">")) ++j;
    while (j < toks.size() &&
           (is_punct(toks[j], "&") || is_punct(toks[j], "*") || is_ident(toks[j], "const")))
      ++j;
    if (j < toks.size() && toks[j].kind == TokKind::kIdent) {
      unordered_names.insert(toks[j].text);
    }
  }
  if (unordered_names.empty()) return;

  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    // Range-for whose range expression mentions an unordered name.
    if (is_ident(toks[i], "for") && is_punct(toks[i + 1], "(")) {
      const std::size_t close = match_paren(toks, i + 1);
      // The range-for ':' sits at nesting depth 0 *within* the for parens.
      int depth = 0;
      std::size_t colon = 0;
      for (std::size_t k = i + 2; k < close; ++k) {
        if (is_punct(toks[k], "(") || is_punct(toks[k], "[") || is_punct(toks[k], "{"))
          ++depth;
        if (is_punct(toks[k], ")") || is_punct(toks[k], "]") || is_punct(toks[k], "}"))
          --depth;
        if (depth == 0 && is_punct(toks[k], ":")) {
          colon = k;
          break;
        }
      }
      if (colon == 0) continue;
      for (std::size_t k = colon + 1; k < close; ++k) {
        if (toks[k].kind == TokKind::kIdent && unordered_names.count(toks[k].text)) {
          add_finding(out, lexed, kUnorderedIter, file, toks[k],
                      "range-for over std::unordered_ container '" + toks[k].text +
                          "': hash iteration order is implementation-defined and "
                          "must not feed modeled output — iterate sorted keys, or "
                          "suppress with a justification if order provably cannot "
                          "escape");
          break;
        }
      }
    }
    // Explicit iterator traversal: name.begin(), name->cbegin(), and the
    // subscripted form name[r].begin() (a container-of-unordered element).
    if (toks[i].kind == TokKind::kIdent && unordered_names.count(toks[i].text)) {
      std::size_t j = i + 1;
      while (j < toks.size() && is_punct(toks[j], "[")) {
        j = match_bracket(toks, j) + 1;
      }
      if (j + 2 < toks.size() &&
          (is_punct(toks[j], ".") || is_punct(toks[j], "->")) &&
          (is_ident(toks[j + 1], "begin") || is_ident(toks[j + 1], "cbegin") ||
           is_ident(toks[j + 1], "rbegin") || is_ident(toks[j + 1], "crbegin")) &&
          is_punct(toks[j + 2], "(")) {
        add_finding(out, lexed, kUnorderedIter, file, toks[i],
                    "iterator traversal of std::unordered_ container '" +
                        toks[i].text +
                        "': hash iteration order is implementation-defined and "
                        "must not feed modeled output");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// determinism-banned-calls
// ---------------------------------------------------------------------------

void rule_banned_calls(const std::string& file, const LexedSource& lexed,
                       std::vector<Finding>& out) {
  const std::vector<Token>& toks = lexed.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent) continue;
    const std::string& t = toks[i].text;
    if (t == "random_device") {
      add_finding(out, lexed, kBannedCalls, file, toks[i],
                  "std::random_device is nondeterministic; use ptilu::Rng or "
                  "mix64/vertex_key (support/rng.hpp) with an explicit seed");
      continue;
    }
    const bool call = i + 1 < toks.size() && is_punct(toks[i + 1], "(");
    if (!call) continue;
    if (t == "now") {
      // Clock::now() in any spelling is a wall-clock read.
      add_finding(out, lexed, kBannedCalls, file, toks[i],
                  "wall-clock now() in library code: modeled paths must be "
                  "deterministic; wall timing belongs in bench/ harnesses (or "
                  "carry a justified suppression, as support/timer.hpp does)");
      continue;
    }
    if (member_access_before(toks, i)) continue;  // obj.time etc. is a member
    if (t == "rand" || t == "srand") {
      add_finding(out, lexed, kBannedCalls, file, toks[i],
                  t + "() is nondeterministic across platforms; use ptilu::Rng "
                      "with an explicit seed");
    } else if (t == "time" || t == "clock" || t == "gettimeofday") {
      add_finding(out, lexed, kBannedCalls, file, toks[i],
                  t + "() reads the wall clock; modeled paths must be "
                      "deterministic (wall timing belongs in bench/ harnesses)");
    }
  }
}

// ---------------------------------------------------------------------------
// spmd-collective-tag
// ---------------------------------------------------------------------------

bool is_collective_name(const Token& t) {
  return is_ident(t, "allreduce_sum") || is_ident(t, "allreduce_max") ||
         is_ident(t, "allreduce_sum_ll") || is_ident(t, "collective") ||
         is_ident(t, "declare_collective");
}

void rule_collective_tag(const std::string& file, const LexedSource& lexed,
                         std::vector<Finding>& out) {
  const std::vector<Token>& toks = lexed.tokens;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!is_collective_name(toks[i])) continue;
    if (!is_punct(toks[i + 1], "(")) continue;
    // Member calls only (machine.collective / ctx.declare_collective):
    // `Machine::allreduce_sum(...)` definitions and doc references are not
    // call sites.
    if (!member_access_before(toks, i)) continue;
    const std::size_t close = match_paren(toks, i + 1);
    bool tagged = false;
    for (std::size_t k = i + 2; k < close; ++k) {
      if (toks[k].kind == TokKind::kString) {
        tagged = true;
        break;
      }
    }
    if (!tagged) {
      add_finding(out, lexed, kCollectiveTag, file, toks[i],
                  toks[i].text +
                      "() without a call-site tag literal: conformance reports "
                      "need the site to name both halves of a divergent "
                      "collective (pass e.g. \"driver/phase\")");
    }
  }
}

// ---------------------------------------------------------------------------
// spmd-phase-coverage
// ---------------------------------------------------------------------------

bool is_comm_name(const Token& t) {
  return is_ident(t, "send_bytes") || is_ident(t, "send_indices") ||
         is_ident(t, "send_reals") || is_ident(t, "recv_all");
}

void rule_phase_coverage(const std::string& file, const LexedSource& lexed,
                         std::vector<Finding>& out) {
  const std::vector<Token>& toks = lexed.tokens;
  int depth = 0;
  // Brace depths at which a ScopedPhase object is alive; the phase dies
  // when its enclosing block closes.
  std::vector<int> phase_depths;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (is_punct(toks[i], "{")) ++depth;
    if (is_punct(toks[i], "}")) {
      --depth;
      while (!phase_depths.empty() && phase_depths.back() > depth) {
        phase_depths.pop_back();
      }
    }
    if (is_ident(toks[i], "ScopedPhase")) {
      phase_depths.push_back(depth);
      continue;
    }
    if (is_comm_name(toks[i]) && i + 1 < toks.size() && is_punct(toks[i + 1], "(") &&
        member_access_before(toks, i) && phase_depths.empty()) {
      add_finding(out, lexed, kPhaseCoverage, file, toks[i],
                  toks[i].text +
                      "() outside any lexical sim::ScopedPhase scope: traces and "
                      "metrics could not attribute this traffic to an algorithm "
                      "phase (open a phase, or suppress when the caller is "
                      "always phased)");
    }
  }
}

// ---------------------------------------------------------------------------
// assert-macro
// ---------------------------------------------------------------------------

void rule_assert_macro(const std::string& file, const LexedSource& lexed,
                       std::vector<Finding>& out) {
  const std::vector<Token>& toks = lexed.tokens;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (is_ident(toks[i], "assert") && is_punct(toks[i + 1], "(") &&
        !member_access_before(toks, i)) {
      add_finding(out, lexed, kAssertMacro, file, toks[i],
                  "raw assert() is banned: use PTILU_ASSERT (debug invariant) or "
                  "PTILU_CHECK (always-on validation), which throw ptilu::Error "
                  "with location info and are clang-tidy-registered");
    }
  }
}

// ---------------------------------------------------------------------------
// float-in-model
// ---------------------------------------------------------------------------

void rule_float_in_model(const std::string& file, const LexedSource& lexed,
                         std::vector<Finding>& out) {
  for (const Token& tok : lexed.tokens) {
    if (is_ident(tok, "float")) {
      add_finding(out, lexed, kFloatInModel, file, tok,
                  "float in the simulator: modeled time and the metrics "
                  "accounting identities are double-precision bit-exact; use "
                  "double or an integer type");
    }
  }
}

}  // namespace

const std::vector<std::string>& rule_names() {
  static const std::vector<std::string> kNames = {
      kUnorderedIter, kBannedCalls, kCollectiveTag,
      kPhaseCoverage, kAssertMacro, kFloatInModel,
  };
  return kNames;
}

bool known_rule(const std::string& rule) {
  const auto& names = rule_names();
  return std::find(names.begin(), names.end(), rule) != names.end();
}

std::vector<Finding> lint_source(const std::string& path, const std::string& text) {
  const Scope scope = classify(path);
  const LexedSource lexed = lex(text);
  std::vector<Finding> out;
  if (scope.in_src) rule_unordered_iter(path, lexed, out);
  if (scope.in_src || scope.in_include) rule_banned_calls(path, lexed, out);
  if (scope.driver) rule_collective_tag(path, lexed, out);
  if (scope.driver) rule_phase_coverage(path, lexed, out);
  if (scope.in_src || scope.in_include) rule_assert_macro(path, lexed, out);
  if (scope.in_sim) rule_float_in_model(path, lexed, out);
  std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    if (a.line != b.line) return a.line < b.line;
    if (a.col != b.col) return a.col < b.col;
    return a.rule < b.rule;
  });
  return out;
}

namespace {

std::string read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("ptilu-lint: cannot read " + path.string());
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::string generic_relative(const std::filesystem::path& path,
                             const std::filesystem::path& root) {
  return std::filesystem::relative(path, root).generic_string();
}

}  // namespace

Report lint_files(const std::filesystem::path& root,
                  const std::vector<std::string>& files) {
  Report report;
  for (const std::string& file : files) {
    std::filesystem::path path(file);
    if (path.is_relative()) path = root / path;
    const std::string rel = generic_relative(path, root);
    report.files.push_back(rel);
    const std::vector<Finding> found = lint_source(rel, read_file(path));
    report.findings.insert(report.findings.end(), found.begin(), found.end());
  }
  std::sort(report.findings.begin(), report.findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              if (a.col != b.col) return a.col < b.col;
              return a.rule < b.rule;
            });
  return report;
}

Report lint_tree(const std::filesystem::path& root) {
  std::vector<std::string> files;
  for (const char* top : {"src", "include"}) {
    const std::filesystem::path dir = root / top;
    if (!std::filesystem::is_directory(dir)) continue;
    for (const auto& entry : std::filesystem::recursive_directory_iterator(dir)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext == ".cpp" || ext == ".hpp" || ext == ".h") {
        files.push_back(generic_relative(entry.path(), root));
      }
    }
  }
  std::sort(files.begin(), files.end());
  return lint_files(root, files);
}

std::size_t unsuppressed_count(const std::vector<Finding>& findings) {
  std::size_t n = 0;
  for (const Finding& f : findings) {
    if (!f.suppressed) ++n;
  }
  return n;
}

std::string to_text(const Report& report, bool show_suppressed) {
  std::ostringstream out;
  std::size_t suppressed = 0;
  for (const Finding& f : report.findings) {
    if (f.suppressed) ++suppressed;
    if (f.suppressed && !show_suppressed) continue;
    out << f.file << ':' << f.line << ':' << f.col << ": [" << f.rule << "] "
        << f.message;
    if (f.suppressed) out << "  (suppressed)";
    out << '\n';
  }
  out << "ptilu-lint: " << report.files.size() << " file(s), "
      << report.findings.size() << " finding(s): "
      << (report.findings.size() - suppressed) << " unsuppressed, " << suppressed
      << " suppressed\n";
  return out.str();
}

namespace {

std::string json_escape(const std::string& s) {
  std::ostringstream out;
  for (const char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      case '\r': out << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
  return out.str();
}

}  // namespace

std::string to_json(const Report& report) {
  std::ostringstream out;
  const std::size_t total = report.findings.size();
  const std::size_t unsuppressed = unsuppressed_count(report.findings);
  out << "{\n  \"schema\": \"ptilu-lint-v1\",\n";
  out << "  \"files_scanned\": " << report.files.size() << ",\n";
  out << "  \"rules\": [";
  for (std::size_t i = 0; i < rule_names().size(); ++i) {
    out << (i ? ", " : "") << '"' << rule_names()[i] << '"';
  }
  out << "],\n";
  out << "  \"counts\": {\"total\": " << total << ", \"suppressed\": "
      << (total - unsuppressed) << ", \"unsuppressed\": " << unsuppressed << "},\n";
  out << "  \"findings\": [";
  for (std::size_t i = 0; i < report.findings.size(); ++i) {
    const Finding& f = report.findings[i];
    out << (i ? "," : "") << "\n    {\"rule\": \"" << json_escape(f.rule)
        << "\", \"file\": \"" << json_escape(f.file) << "\", \"line\": " << f.line
        << ", \"col\": " << f.col << ", \"suppressed\": "
        << (f.suppressed ? "true" : "false") << ", \"message\": \""
        << json_escape(f.message) << "\"}";
  }
  out << (report.findings.empty() ? "]\n" : "\n  ]\n");
  out << "}\n";
  return out.str();
}

}  // namespace ptilu::lint
