#include "lexer.hpp"

#include <cctype>
#include <cstddef>

namespace ptilu::lint {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}
bool digit(char c) { return std::isdigit(static_cast<unsigned char>(c)); }

/// Scan a comment's text for `ptilu-lint: allow(rule[, rule...])` and add
/// the named rules to every line in [first_line, last_line + 1] — the
/// comment's own span plus the line below it, so an annotation can sit at
/// the end of the offending line or on the line above it.
void harvest_suppressions(const std::string& comment, int first_line, int last_line,
                          std::map<int, std::set<std::string>>& allowed) {
  const std::string kMarker = "ptilu-lint:";
  std::size_t pos = 0;
  while ((pos = comment.find(kMarker, pos)) != std::string::npos) {
    std::size_t p = pos + kMarker.size();
    while (p < comment.size() && comment[p] == ' ') ++p;
    const std::string kAllow = "allow(";
    if (comment.compare(p, kAllow.size(), kAllow) != 0) {
      pos = p;
      continue;
    }
    p += kAllow.size();
    const std::size_t close = comment.find(')', p);
    if (close == std::string::npos) return;
    // Split the rule list on commas/whitespace.
    std::string name;
    for (std::size_t i = p; i <= close; ++i) {
      const char c = i == close ? ',' : comment[i];
      if (c == ',' || c == ' ' || c == '\t') {
        if (!name.empty()) {
          for (int line = first_line; line <= last_line + 1; ++line) {
            allowed[line].insert(name);
          }
          name.clear();
        }
      } else {
        name.push_back(c);
      }
    }
    pos = close + 1;
  }
}

class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) {}

  LexedSource run() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '\n') {
        advance();
        at_line_start_ = true;
        continue;
      }
      if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
        advance();
        continue;
      }
      if (c == '/' && peek(1) == '/') {
        line_comment();
        continue;
      }
      if (c == '/' && peek(1) == '*') {
        block_comment();
        continue;
      }
      if (at_line_start_ && c == '#') {
        preprocessor_line();
        continue;
      }
      at_line_start_ = false;
      if (c == 'R' && peek(1) == '"') {
        raw_string();
        continue;
      }
      // Encoding prefixes on ordinary strings/chars (u8"", L'', ...).
      if (ident_start(c)) {
        identifier_or_prefixed_literal();
        continue;
      }
      if (digit(c) || (c == '.' && digit(peek(1)))) {
        number();
        continue;
      }
      if (c == '"') {
        quoted(TokKind::kString, '"');
        continue;
      }
      if (c == '\'') {
        quoted(TokKind::kChar, '\'');
        continue;
      }
      punct();
    }
    return std::move(out_);
  }

 private:
  char peek(std::size_t ahead) const {
    return pos_ + ahead < text_.size() ? text_[pos_ + ahead] : '\0';
  }

  void advance() {
    if (text_[pos_] == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    ++pos_;
  }

  void emit(TokKind kind, std::size_t begin, int line, int col) {
    out_.tokens.push_back(Token{kind, text_.substr(begin, pos_ - begin), line, col});
  }

  void line_comment() {
    const int first = line_;
    const std::size_t begin = pos_;
    while (pos_ < text_.size() && text_[pos_] != '\n') advance();
    harvest_suppressions(text_.substr(begin, pos_ - begin), first, first, out_.allowed);
  }

  void block_comment() {
    const int first = line_;
    const std::size_t begin = pos_;
    advance();  // '/'
    advance();  // '*'
    while (pos_ < text_.size() && !(text_[pos_] == '*' && peek(1) == '/')) advance();
    if (pos_ < text_.size()) {
      advance();
      advance();
    }
    harvest_suppressions(text_.substr(begin, pos_ - begin), first, line_, out_.allowed);
  }

  /// Skip a whole preprocessor directive (honoring backslash
  /// continuations). Directive bodies are not lintable code, and the `<>`
  /// of #include would confuse template-bracket matching. A trailing //
  /// comment is still harvested so suppressions work on directive lines.
  void preprocessor_line() {
    while (pos_ < text_.size()) {
      if (text_[pos_] == '/' && peek(1) == '/') {
        line_comment();
        break;
      }
      if (text_[pos_] == '\n') {
        // A continuation keeps the directive going on the next line.
        if (pos_ > 0 && text_[pos_ - 1] == '\\') {
          advance();
          continue;
        }
        break;
      }
      advance();
    }
    at_line_start_ = true;
  }

  void raw_string() {
    const int line = line_, col = col_;
    const std::size_t begin = pos_;
    advance();  // 'R'
    consume_raw_string_body();
    emit(TokKind::kString, begin, line, col);
  }

  /// Consume `"delim( ... )delim"` with pos_ at the opening quote.
  void consume_raw_string_body() {
    advance();  // '"'
    std::string delim;
    while (pos_ < text_.size() && text_[pos_] != '(') {
      delim.push_back(text_[pos_]);
      advance();
    }
    const std::string close = ")" + delim + "\"";
    while (pos_ < text_.size() && text_.compare(pos_, close.size(), close) != 0) {
      advance();
    }
    for (std::size_t i = 0; i < close.size() && pos_ < text_.size(); ++i) advance();
  }

  void identifier_or_prefixed_literal() {
    const int line = line_, col = col_;
    const std::size_t begin = pos_;
    while (pos_ < text_.size() && ident_char(text_[pos_])) advance();
    const std::string word = text_.substr(begin, pos_ - begin);
    // Encoding/raw prefixes: u8R"(...)", LR"(...)", u8"...", L'x', ...
    if (pos_ < text_.size() && text_[pos_] == '"' &&
        (word == "u8" || word == "u" || word == "U" || word == "L")) {
      consume_quoted('"');
      emit(TokKind::kString, begin, line, col);
      return;
    }
    if (pos_ < text_.size() && text_[pos_] == '"' &&
        (word == "u8R" || word == "uR" || word == "UR" || word == "LR" || word == "R")) {
      consume_raw_string_body();
      emit(TokKind::kString, begin, line, col);
      return;
    }
    if (pos_ < text_.size() && text_[pos_] == '\'' &&
        (word == "u8" || word == "u" || word == "U" || word == "L")) {
      consume_quoted('\'');
      emit(TokKind::kChar, begin, line, col);
      return;
    }
    emit(TokKind::kIdent, begin, line, col);
  }

  void number() {
    const int line = line_, col = col_;
    const std::size_t begin = pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (ident_char(c) || c == '.') {
        advance();
        continue;
      }
      // Digit separator 1'000'000.
      if (c == '\'' && ident_char(peek(1))) {
        advance();
        advance();
        continue;
      }
      // Exponent signs: 1e-5, 0x1.0p-53.
      if ((c == '+' || c == '-') && pos_ > begin) {
        const char prev = text_[pos_ - 1];
        if (prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P') {
          advance();
          continue;
        }
      }
      break;
    }
    emit(TokKind::kNumber, begin, line, col);
  }

  void quoted(TokKind kind, char quote) {
    const int line = line_, col = col_;
    const std::size_t begin = pos_;
    consume_quoted(quote);
    emit(kind, begin, line, col);
  }

  void consume_quoted(char quote) {
    advance();  // opening quote
    while (pos_ < text_.size() && text_[pos_] != quote && text_[pos_] != '\n') {
      if (text_[pos_] == '\\' && pos_ + 1 < text_.size()) advance();
      advance();
    }
    if (pos_ < text_.size() && text_[pos_] == quote) advance();
  }

  void punct() {
    const int line = line_, col = col_;
    const std::size_t begin = pos_;
    const char c = text_[pos_];
    advance();
    // Fuse the two tokens rules need to recognize as units.
    if ((c == ':' && pos_ < text_.size() && text_[pos_] == ':') ||
        (c == '-' && pos_ < text_.size() && text_[pos_] == '>')) {
      advance();
    }
    emit(TokKind::kPunct, begin, line, col);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
  bool at_line_start_ = true;
  LexedSource out_;
};

}  // namespace

LexedSource lex(const std::string& text) { return Lexer(text).run(); }

bool is_allowed(const std::map<int, std::set<std::string>>& allowed,
                const std::string& rule, int line) {
  const auto it = allowed.find(line);
  return it != allowed.end() && it->second.count(rule) > 0;
}

}  // namespace ptilu::lint
