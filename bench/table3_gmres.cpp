// Reproduces Table 3: GMRES(20) and GMRES(50) solve time and number of
// matrix-vector products (NMV) on p=128, preconditioned by each of the 18
// parallel factorizations plus the diagonal baseline. b = A·e, x0 = 0,
// stop when the (preconditioned) residual norm drops by 1e-5.
//
// NMV is a pure algorithmic output (real GMRES runs on the real factors).
// Time is modeled: NMV x (modeled parallel SpMV + preconditioner
// application) plus a modeled estimate of the distributed vector
// operations (dots need an allreduce; axpys are local) — the same cost
// model as Tables 1/2.
//
// --residuals <file> writes the full convergence histories of the sweep as
// CSV (matrix, preconditioner, restart, iteration, residual — one row per
// inner GMRES iteration); with --report-dir, the run reports embed each
// configuration's initial/final residual under run.configurations.
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>

#include "bench_common.hpp"
#include "ptilu/krylov/gmres.hpp"
#include "ptilu/krylov/gmres_dist.hpp"
#include "ptilu/pilut/trisolve_dist.hpp"
#include "ptilu/sim/machine.hpp"
#include "ptilu/support/timer.hpp"

namespace ptilu::bench {
namespace {

/// Full-precision decimal form for the residual CSV and report JSON.
std::string format_real(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// Modeled cost of the per-iteration dense vector work of GMRES(restart):
/// on average (restart+1)/2 + 1 dots (each 2n/p flops + a log2(p) allreduce)
/// and as many axpys (2n/p flops, no communication).
double vector_op_cost(const sim::MachineParams& params, idx n, int p, int restart) {
  const double avg_ops = (restart + 1) / 2.0 + 1.0;
  const double flops_per_op = 2.0 * static_cast<double>(n) / p;
  const double dot_cost = flops_per_op * params.flop +
                          std::ceil(std::log2(std::max(2, p))) * params.alpha;
  const double axpy_cost = flops_per_op * params.flop;
  return avg_ops * (dot_cost + axpy_cost);
}

void run_matrix(const TestMatrix& matrix, int nranks,
                const std::vector<FactorConfig>& configs, idx star_k, real rtol,
                int max_matvecs, Observability& obs, std::ofstream* residuals_csv) {
  print_header("Table 3: GMRES solve time (modeled s) and matrix-vector count", matrix);
  const DistCsr dist = distribute(matrix.a, nranks);
  const Halo halo = Halo::build(dist);
  const RealVec b = workloads::rhs_all_ones_solution(matrix.a);
  const idx n = matrix.a.n_rows;

  // Modeled cost of one parallel SpMV on this matrix/partition.
  double spmv_cost = 0;
  {
    sim::Machine machine(nranks);
    RealVec y(n);
    dist_spmv(machine, dist, halo, b, y);
    spmv_cost = machine.modeled_time();
  }

  Table table({"Preconditioner", "GMRES(20) Time", "GMRES(20) NMV", "GMRES(50) Time",
               "GMRES(50) NMV"});

  const auto solve_with = [&](const Preconditioner& precond, double apply_cost,
                              int restart) {
    RealVec x(n, 0.0);
    GmresResult result =
        gmres(matrix.a, precond, b, x,
              {.restart = restart, .max_matvecs = max_matvecs, .rtol = rtol});
    const double per_iter = spmv_cost + apply_cost +
                            vector_op_cost(sim::MachineParams::cray_t3d(), n, nranks,
                                           restart);
    struct Outcome {
      double time;
      GmresResult gmres;
    };
    return Outcome{result.matvecs * per_iter, std::move(result)};
  };

  // Per-configuration convergence record: CSV rows (one per inner
  // iteration) and a JSON entry for the run report's "configurations".
  std::string configs_json = "[";
  bool first_config = true;
  const auto record = [&](const std::string& label, int restart,
                          const GmresResult& g) {
    if (residuals_csv != nullptr) {
      for (std::size_t it = 0; it < g.residual_history.size(); ++it) {
        *residuals_csv << matrix.name << ",\"" << label << "\"," << restart << ','
                       << it + 1 << ',' << format_real(g.residual_history[it])
                       << '\n';
      }
    }
    if (!first_config) configs_json += ", ";
    first_config = false;
    configs_json += "{\"preconditioner\": \"" + label +
                    "\", \"restart\": " + std::to_string(restart) +
                    ", \"nmv\": " + std::to_string(g.matvecs) +
                    ", \"converged\": " + (g.converged ? "true" : "false") +
                    ", \"initial_residual\": " + format_real(g.initial_residual) +
                    ", \"final_residual\": " + format_real(g.final_residual) + "}";
  };

  for (const idx cap_k : {idx{0}, star_k}) {
    for (const auto& config : configs) {
      sim::Machine machine(nranks);
      const PilutResult result = pilut_factor(
          machine, dist,
          {.m = config.m, .tau = config.tau, .cap_k = cap_k, .pivot_rel = 1e-12});
      const DistTriangularSolver solver(result.factors, result.schedule);
      machine.reset();
      RealVec x(n);
      solver.apply(machine, b, x);
      const double apply_cost = machine.modeled_time();

      const IluPreconditioner precond(result.factors, result.schedule.newnum);
      const std::string label = config_label(config, cap_k);
      const auto g20 = solve_with(precond, apply_cost, 20);
      const auto g50 = solve_with(precond, apply_cost, 50);
      record(label, 20, g20.gmres);
      record(label, 50, g50.gmres);
      table.row()
          .cell(label)
          .cell(g20.gmres.converged ? format_fixed(g20.time, 3) : "no conv")
          .cell(static_cast<long long>(g20.gmres.matvecs))
          .cell(g50.gmres.converged ? format_fixed(g50.time, 3) : "no conv")
          .cell(static_cast<long long>(g50.gmres.matvecs));
    }
  }
  {
    // Diagonal baseline: apply cost is n/p flops, no communication.
    const JacobiPreconditioner precond(matrix.a);
    const double apply_cost = static_cast<double>(n) / nranks *
                              sim::MachineParams::cray_t3d().flop;
    const auto g20 = solve_with(precond, apply_cost, 20);
    const auto g50 = solve_with(precond, apply_cost, 50);
    record("Diagonal", 20, g20.gmres);
    record("Diagonal", 50, g50.gmres);
    table.row()
        .cell("Diagonal")
        .cell(g20.gmres.converged ? format_fixed(g20.time, 3) : "no conv")
        .cell(static_cast<long long>(g20.gmres.matvecs))
        .cell(g50.gmres.converged ? format_fixed(g50.time, 3) : "no conv")
        .cell(static_cast<long long>(g50.gmres.matvecs));
  }
  table.print(std::cout);
  configs_json += "]";

  // Optional observed rerun: the fully distributed GMRES(20) (gmres_dist
  // executes every vector operation on the machine, unlike the analytic
  // vector_op_cost model above), instrumented end to end. The factorization
  // runs on a scratch machine so the breakdown covers only the solve.
  if (obs.enabled()) {
    const FactorConfig config = configs[configs.size() / 2];
    sim::Machine factor_machine(nranks);
    const PilutResult result = pilut_factor(
        factor_machine, dist,
        {.m = config.m, .tau = config.tau, .cap_k = 0, .pivot_rel = 1e-12});
    RealVec x(n, 0.0);
    sim::Machine machine(nranks, obs.machine_options());
    obs.attach(machine);  // gmres_dist resets the machine at entry
    gmres_dist(machine, dist, halo, result, b, x,
               {.restart = 20, .max_matvecs = max_matvecs, .rtol = rtol});
    obs.report(machine,
               matrix.name + " gmres20 " + config_label(config, 0) + " p=" +
                   std::to_string(nranks),
               {{"harness", "\"table3\""},
                {"matrix", "\"" + matrix.name + "\""},
                {"procs", std::to_string(nranks)},
                {"configurations", configs_json}});
  }
}

}  // namespace
}  // namespace ptilu::bench

int main(int argc, char** argv) {
  using namespace ptilu;
  using namespace ptilu::bench;
  const Cli cli(argc, argv);
  const Scale scale = scale_from_cli(cli);
  const int nranks = static_cast<int>(cli.get_int("procs", 128));
  const idx star_k = static_cast<idx>(cli.get_int("k", 2));
  const real rtol = cli.get_double("rtol", 1e-5);
  const int max_matvecs = static_cast<int>(cli.get_int("max-matvecs", 20000));
  const bool skip_torso = cli.get_bool("skip-torso", false);
  const bool skip_g0 = cli.get_bool("skip-g0", false);
  const std::string residuals_path = cli.get_string("residuals", "");
  Observability obs(cli, "table3");
  cli.check_all_consumed();

  std::ofstream residuals_csv;
  if (!residuals_path.empty()) {
    residuals_csv.open(residuals_path);
    PTILU_CHECK(residuals_csv.good(), "cannot open " << residuals_path << " for writing");
    residuals_csv << "matrix,preconditioner,restart,iteration,residual\n";
  }
  std::ofstream* const csv = residuals_path.empty() ? nullptr : &residuals_csv;

  const auto configs = paper_configs();
  WallTimer timer;
  if (!skip_g0) {
    run_matrix(build_g0(scale), nranks, configs, star_k, rtol, max_matvecs, obs, csv);
  }
  if (!skip_torso) {
    run_matrix(build_torso(scale), nranks, configs, star_k, rtol, max_matvecs, obs, csv);
  }
  if (csv != nullptr) {
    csv->flush();
    PTILU_CHECK(csv->good(), "failed writing " << residuals_path);
    std::cout << "residual histories: " << residuals_path << "\n";
  }
  std::cout << "\n[table3 harness wall time: " << format_fixed(timer.seconds(), 1)
            << "s]\n";
  return 0;
}
