// Ablation: matrix preprocessing for ILUT — natural vs RCM ordering, raw
// vs Ruiz-equilibrated values. ILUT's dual dropping rules are sensitive to
// both (its relative threshold compares magnitudes within a row; its fill
// pattern follows the elimination order), so these classic preprocessing
// steps change preconditioner quality at fixed (m, t) memory budgets.
#include <iostream>

#include "bench_common.hpp"
#include "ptilu/graph/rcm.hpp"
#include "ptilu/ilu/ilut.hpp"
#include "ptilu/krylov/gmres.hpp"
#include "ptilu/sparse/scaling.hpp"
#include "ptilu/support/timer.hpp"

namespace ptilu::bench {
namespace {

struct Prepared {
  Csr a;
  RealVec b;
};

void run_matrix(const std::string& name, const Csr& matrix, const FactorConfig& config) {
  std::cout << "\n=== Ablation: ordering & scaling for ILUT — " << name << " ("
            << workloads::describe(workloads::matrix_stats(matrix)) << ") ===\n";
  std::cout << "configuration ILUT(" << config.m << "," << format_sci(config.tau, 0)
            << "), GMRES(30), rtol 1e-5\n";

  const auto prepare = [&](bool use_rcm, bool use_scaling) -> Prepared {
    Csr a = matrix;
    if (use_scaling) a = equilibrate(a).scaled;
    if (use_rcm) a = permute_symmetric(a, rcm_ordering(graph_from_pattern(a)));
    RealVec b = workloads::rhs_all_ones_solution(a);
    return {std::move(a), std::move(b)};
  };

  Table table({"preprocessing", "bandwidth", "nnz(L)+nnz(U)", "GMRES NMV"});
  const struct {
    const char* label;
    bool rcm, scaling;
  } variants[] = {{"natural", false, false},
                  {"RCM", true, false},
                  {"equilibrated", false, true},
                  {"RCM + equilibrated", true, true}};
  for (const auto& variant : variants) {
    const Prepared prep = prepare(variant.rcm, variant.scaling);
    const IluFactors f =
        ilut(prep.a, {.m = config.m, .tau = config.tau, .pivot_rel = 1e-12});
    RealVec x(prep.a.n_rows, 0.0);
    const GmresResult result =
        gmres(prep.a, IluPreconditioner(f), prep.b, x,
              {.restart = 30, .max_matvecs = 20000});
    table.row()
        .cell(variant.label)
        .cell(static_cast<long long>(bandwidth(prep.a)))
        .cell(static_cast<long long>(f.l.nnz() + f.u.nnz()))
        .cell(static_cast<long long>(result.converged ? result.matvecs : -1));
  }
  table.print(std::cout);
}

}  // namespace
}  // namespace ptilu::bench

int main(int argc, char** argv) {
  using namespace ptilu;
  using namespace ptilu::bench;
  const Cli cli(argc, argv);
  const Scale scale = scale_from_cli(cli);
  const idx m = static_cast<idx>(cli.get_int("m", 10));
  const real tau = cli.get_double("tau", 1e-3);
  cli.check_all_consumed();

  WallTimer timer;
  run_matrix("G0", build_g0(scale).a, {m, tau});
  run_matrix("JUMP2D", workloads::jump_coefficient_2d(
                           scale.g0_nx / 2, scale.g0_ny / 2, 5.0, 7),
             {m, tau});
  std::cout << "\n[ablation_ordering wall time: " << format_fixed(timer.seconds(), 1)
            << "s]\n";
  return 0;
}
