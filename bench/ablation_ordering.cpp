// Ablation: matrix preprocessing for ILUT — natural vs RCM ordering, raw
// vs Ruiz-equilibrated values. ILUT's dual dropping rules are sensitive to
// both (its relative threshold compares magnitudes within a row; its fill
// pattern follows the elimination order), so these classic preprocessing
// steps change preconditioner quality at fixed (m, t) memory budgets.
#include <iostream>

#include "bench_common.hpp"
#include "ptilu/graph/rcm.hpp"
#include "ptilu/ilu/ilut.hpp"
#include "ptilu/krylov/gmres.hpp"
#include "ptilu/sim/machine.hpp"
#include "ptilu/sparse/scaling.hpp"
#include "ptilu/support/timer.hpp"

namespace ptilu::bench {
namespace {

struct Prepared {
  Csr a;
  RealVec b;
};

void run_matrix(const std::string& name, const Csr& matrix, const FactorConfig& config,
                int nranks, Observability& obs) {
  std::cout << "\n=== Ablation: ordering & scaling for ILUT — " << name << " ("
            << workloads::describe(workloads::matrix_stats(matrix)) << ") ===\n";
  std::cout << "configuration ILUT(" << config.m << "," << format_sci(config.tau, 0)
            << "), GMRES(30), rtol 1e-5\n";

  const auto prepare = [&](bool use_rcm, bool use_scaling) -> Prepared {
    Csr a = matrix;
    if (use_scaling) a = equilibrate(a).scaled;
    if (use_rcm) a = permute_symmetric(a, rcm_ordering(graph_from_pattern(a)));
    RealVec b = workloads::rhs_all_ones_solution(a);
    return {std::move(a), std::move(b)};
  };

  Table table({"preprocessing", "bandwidth", "nnz(L)+nnz(U)", "GMRES NMV"});
  const struct {
    const char* label;
    bool rcm, scaling;
  } variants[] = {{"natural", false, false},
                  {"RCM", true, false},
                  {"equilibrated", false, true},
                  {"RCM + equilibrated", true, true}};
  for (const auto& variant : variants) {
    const Prepared prep = prepare(variant.rcm, variant.scaling);
    const IluFactors f =
        ilut(prep.a, {.m = config.m, .tau = config.tau, .pivot_rel = 1e-12});
    RealVec x(prep.a.n_rows, 0.0);
    const GmresResult result =
        gmres(prep.a, IluPreconditioner(f), prep.b, x,
              {.restart = 30, .max_matvecs = 20000});
    table.row()
        .cell(variant.label)
        .cell(static_cast<long long>(bandwidth(prep.a)))
        .cell(static_cast<long long>(f.l.nnz() + f.u.nnz()))
        .cell(static_cast<long long>(result.converged ? result.matvecs : -1));
  }
  table.print(std::cout);

  // Observed rerun (--trace/--report flags): this harness's sweep is
  // host-serial ILUT, so the instrumented run is the parallel factorization
  // of the fully preprocessed variant — how ordering and scaling shift the
  // simulated machine's phase breakdown.
  if (obs.enabled()) {
    const Prepared prep = prepare(true, true);
    const DistCsr dist = distribute(prep.a, nranks);
    sim::Machine machine(nranks, obs.machine_options());
    obs.attach(machine);
    pilut_factor(machine, dist,
                 {.m = config.m, .tau = config.tau, .pivot_rel = 1e-12});
    obs.report(machine,
               name + " rcm_equilibrated p=" + std::to_string(nranks),
               {{"harness", "\"ablation_ordering\""},
                {"matrix", "\"" + name + "\""},
                {"procs", std::to_string(nranks)}});
  }
}

}  // namespace
}  // namespace ptilu::bench

int main(int argc, char** argv) {
  using namespace ptilu;
  using namespace ptilu::bench;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--help") {
      std::cout
          << "ablation_ordering: ILUT preprocessing ablation (EXPERIMENTS.md)\n"
             "  --m=N                ILUT fill per row (default 10)\n"
             "  --tau=T              ILUT drop threshold (default 1e-3)\n"
             "  --procs=P            ranks for the observed parallel rerun\n"
             "                       (default 16; used with --trace/--report)\n"
             "  --quick | --paper    problem-size presets\n"
             "  --trace, --trace-dir=DIR, --report, --report-dir=DIR\n"
             "  --backend=<sequential|threads>, --threads=N\n";
      return 0;
    }
  }
  const Cli cli(argc, argv);
  const Scale scale = scale_from_cli(cli);
  const idx m = static_cast<idx>(cli.get_int("m", 10));
  const real tau = cli.get_double("tau", 1e-3);
  const int nranks = static_cast<int>(cli.get_int("procs", 16));
  Observability obs(cli, "ablation_ordering");
  cli.check_all_consumed();

  WallTimer timer;
  run_matrix("G0", build_g0(scale).a, {m, tau}, nranks, obs);
  run_matrix("JUMP2D", workloads::jump_coefficient_2d(
                           scale.g0_nx / 2, scale.g0_ny / 2, 5.0, 7),
             {m, tau}, nranks, obs);
  std::cout << "\n[ablation_ordering wall time: " << format_fixed(timer.seconds(), 1)
            << "s]\n";
  return 0;
}
