// Reproduces Table 1 (parallel factorization run time for ILUT(m,t) and
// ILUT*(m,t,2) on G0 and TORSO at p = 16, 32, 64, 128) and Figures 4/5
// (speedup relative to 16 processors), plus the §6 epilogue on
// independent-set counts. Times are the modeled parallel run times of the
// simulated Cray T3D (DESIGN.md §1, §4); wall-clock speedups cannot be
// measured on this single-core host, but the modeled times execute the
// real algorithm and communication pattern.
#include <iostream>
#include <map>

#include "bench_common.hpp"
#include "ptilu/sim/machine.hpp"
#include "ptilu/support/timer.hpp"

namespace ptilu::bench {
namespace {

struct RunResult {
  double time = 0;
  int levels = 0;
  nnz_t max_reduced_row = 0;
};

void run_matrix(const TestMatrix& matrix, const std::vector<int>& procs,
                const std::vector<FactorConfig>& configs, idx star_k,
                Observability& obs) {
  print_header("Table 1: factorization time (modeled seconds)", matrix);

  // dist structures per processor count (partitioning is reused across
  // configurations, as the paper does).
  std::map<int, DistCsr> dists;
  for (const int p : procs) dists.emplace(p, distribute(matrix.a, p));

  std::vector<std::string> headers = {"Factorization"};
  for (const int p : procs) headers.push_back("p=" + std::to_string(p));
  Table table(headers);
  Table speedup_table(headers);  // Figures 4/5: speedup relative to procs[0]
  std::map<std::pair<std::string, int>, RunResult> results;

  for (const idx cap_k : {idx{0}, star_k}) {
    for (const auto& config : configs) {
      const std::string label = config_label(config, cap_k);
      auto row = table.row();
      row.cell(label);
      auto srow = speedup_table.row();
      srow.cell(label);
      double base_time = 0;
      for (const int p : procs) {
        sim::Machine machine(p);
        const PilutResult result = pilut_factor(
            machine, dists.at(p),
            {.m = config.m, .tau = config.tau, .cap_k = cap_k, .pivot_rel = 1e-12});
        results[{label, p}] = {result.stats.time_total, result.stats.levels,
                               result.stats.max_reduced_row};
        if (p == procs.front()) base_time = result.stats.time_total;
        row.cell(result.stats.time_total, 4);
        srow.cell(base_time / result.stats.time_total, 2);
      }
    }
  }
  table.print(std::cout);

  std::cout << "\nFigure " << (matrix.name == "G0" ? "4" : "5")
            << ": factorization speedup relative to p=" << procs.front() << "\n";
  speedup_table.print(std::cout);

  // §6 epilogue: number of independent sets (q) and reduced-row density.
  std::cout << "\nIndependent sets (q) and densest reduced row, p=" << procs.back() << ":\n";
  Table qtable({"Factorization", "levels q", "max reduced row"});
  for (const idx cap_k : {idx{0}, star_k}) {
    for (const auto& config : configs) {
      const std::string label = config_label(config, cap_k);
      const RunResult& r = results[{label, procs.back()}];
      qtable.row().cell(label).cell(static_cast<long long>(r.levels)).cell(
          static_cast<long long>(r.max_reduced_row));
    }
  }
  qtable.print(std::cout);

  // Optional observed rerun of a representative configuration (the middle
  // of the paper's sweep) at the largest processor count. The sweep above
  // is always uninstrumented, so its numbers are unaffected by the flags.
  if (obs.enabled()) {
    const FactorConfig config = configs[configs.size() / 2];
    const int p = procs.back();
    sim::Machine machine(p, obs.machine_options());
    obs.attach(machine);
    pilut_factor(machine, dists.at(p),
                 {.m = config.m, .tau = config.tau, .cap_k = 0, .pivot_rel = 1e-12});
    obs.report(machine,
               matrix.name + " " + config_label(config, 0) + " p=" + std::to_string(p),
               {{"harness", "\"table1\""},
                {"matrix", "\"" + matrix.name + "\""},
                {"procs", std::to_string(p)}});
  }
}

}  // namespace
}  // namespace ptilu::bench

int main(int argc, char** argv) {
  using namespace ptilu;
  using namespace ptilu::bench;
  const Cli cli(argc, argv);
  const Scale scale = scale_from_cli(cli);
  const auto procs = cli.get_int_list("procs", {16, 32, 64, 128});
  const idx star_k = static_cast<idx>(cli.get_int("k", 2));
  const bool skip_torso = cli.get_bool("skip-torso", false);
  const bool skip_g0 = cli.get_bool("skip-g0", false);
  Observability obs(cli, "table1");
  cli.check_all_consumed();

  const auto configs = paper_configs();
  WallTimer timer;
  if (!skip_g0) run_matrix(build_g0(scale), procs, configs, star_k, obs);
  if (!skip_torso) run_matrix(build_torso(scale), procs, configs, star_k, obs);
  std::cout << "\n[table1 harness wall time: " << format_fixed(timer.seconds(), 1)
            << "s]\n";
  return 0;
}
