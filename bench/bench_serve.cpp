// Preconditioner-as-a-service benchmark: seeded synthetic traffic against
// a FactorCache-backed solve service, measuring what batching and factor
// reuse buy at serving time.
//
// Three bench families, one JSON file ("ptilu-bench-serve-v1"):
//
//  * apply_benches — the core serving loop. A deterministic Poisson
//    arrival schedule (serve/traffic.hpp; modeled seconds, never the wall
//    clock) is pushed through the single-server FIFO batching policy of
//    serve/solve_service.hpp at several --batch caps. Batch formation uses
//    MODELED service times, so WHICH requests batch together is identical
//    on every backend and every run; each planned batch is then executed
//    for real through the batched DenseRhsBlock trisolves and its measured
//    wall time replayed through the same queueing recursion, yielding wall
//    p50/p99 latency and solves/sec for identical batching decisions.
//    Arrival times live on the modeled axis and cannot be meaningfully
//    compared against wall seconds, so the wall replay is CLOSED-LOOP:
//    every request is treated as already queued at t=0 and the frozen
//    batches run back-to-back — wall_total_s is exactly the sum of the
//    measured batch times, and wall latency is time-in-system under full
//    backlog. The arrival rate oversubscribes the modeled k=1 server, so
//    the wall throughput ratio between --batch=8 and --batch=1 exposes the
//    batched kernels' own speedup (factor streamed once per batch, k
//    register-resident accumulators).
//
//  * stream_benches — c host threads each running serial preconditioned
//    GMRES end to end against ONE shared cached factor (the pipelined
//    front-end; apply is const and thread-safe by construction). The
//    checksum folds every stream's residuals/matvecs in stream order, so
//    it is identical no matter how the OS schedules the threads — the
//    tsan preset runs exactly this bench's test-suite twin.
//
//  * dist_benches — the simulated-parallel side: one batched
//    DistTriangularSolver::apply over k right-hand sides versus k
//    single-RHS applies on the same machine, comparing modeled time and
//    message counts (the batched level sweep sends ONE message pair per
//    peer per level regardless of k).
//
// The top-level "payload_checksum" is an FNV-1a 64 hash over the
// deterministic fields only (modeled numbers, checksums, cache counters —
// never wall-clock), so two runs on different backends must produce the
// same value. With --exact all wall_* fields are omitted from the JSON,
// making the whole file byte-comparable across runs and backends; CI and
// the determinism ctests diff exactly that.
//
// Flags: --smoke / --quick (problem size), --requests=N, --batch=LIST
// (batch caps for apply_benches), --streams=LIST (thread counts for
// stream_benches), --procs=P and --dist-k=K (dist_benches shape),
// --seed=N, --cache-cap=N (FactorCache capacity; default from
// PTILU_SERVE_CACHE_CAP), --json=PATH, --exact (deterministic-only JSON),
// --backend=<sequential|threads> / --threads=N (simulated-machine backend
// for dist_benches, default from PTILU_BACKEND / PTILU_THREADS).
#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "ptilu/ilu/ilut.hpp"
#include "ptilu/ilu/rhs_block.hpp"
#include "ptilu/krylov/gmres.hpp"
#include "ptilu/krylov/preconditioner.hpp"
#include "ptilu/pilut/trisolve_dist.hpp"
#include "ptilu/serve/factor_cache.hpp"
#include "ptilu/serve/solve_service.hpp"
#include "ptilu/serve/traffic.hpp"
#include "ptilu/support/rng.hpp"
#include "ptilu/support/timer.hpp"

namespace {

using namespace ptilu;
using bench::TestMatrix;

struct ApplyBench {
  int batch_max = 0;
  std::size_t batches = 0;
  serve::ServeReport modeled;
  serve::ServeReport wall;  // valid only when `measured`
  bool measured = false;
  double checksum = 0.0;
};

struct StreamBench {
  int streams = 0;
  int solves = 0;
  long long matvecs = 0;
  double wall_total_s = 0.0;  // valid only when `measured`
  bool measured = false;
  double checksum = 0.0;
};

struct DistBench {
  int procs = 0;
  int k = 0;
  double modeled_batched_s = 0.0;
  double modeled_single_s = 0.0;
  std::uint64_t batched_messages = 0;
  std::uint64_t single_messages = 0;
  double checksum = 0.0;
};

double block_checksum(const DenseRhsBlock& x) {
  double sum = 0.0;
  for (const real v : x.data) sum += v;
  return sum;
}

/// FNV-1a 64 over a string: the payload checksum hashes the deterministic
/// report fields serialized with the same %.17g the JSON writer uses, so
/// "same checksum" means "same deterministic payload".
std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t hash = 1469598103934665603ULL;
  for (const char c : s) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;
  }
  return hash;
}

void append_g(std::string& out, const char* key, double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%s=%.17g;", key, value);
  out += buffer;
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const bool smoke = cli.get_bool("smoke", false);
  const bool quick = cli.get_bool("quick", false);
  bench::Scale scale;
  if (smoke) {
    scale = {48, 48, 8, 8, 12};
  } else if (quick) {
    scale = {96, 96, 16, 16, 24};
  }
  const int requests = static_cast<int>(cli.get_int("requests", smoke ? 48 : (quick ? 96 : 256)));
  const std::vector<int> batch_caps = cli.get_int_list("batch", {1, 2, 4, 8});
  const std::vector<int> stream_counts =
      cli.get_int_list("streams", smoke ? std::vector<int>{1, 2} : std::vector<int>{1, 2, 4});
  const int procs = static_cast<int>(cli.get_int("procs", 4));
  const int dist_k = static_cast<int>(cli.get_int("dist-k", 8));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  const auto cache_cap = static_cast<std::size_t>(
      cli.get_int("cache-cap", static_cast<long long>(serve::FactorCache::capacity_from_env())));
  const std::string json_path = cli.get_string("json", "");
  const bool exact = cli.get_bool("exact", false);
  const sim::Machine::Options machine_opts = bench::machine_options_from_cli(cli);
  cli.check_all_consumed();
  PTILU_CHECK(requests >= 1 && procs >= 1 && dist_k >= 1, "invalid bench shape");

  const TestMatrix g0 = bench::build_g0(scale);
  const idx n = g0.a.n_rows;
  const IlutOptions serial_opts{.m = 10, .tau = 1e-4, .pivot_rel = 1e-12};

  serve::FactorCache cache(cache_cap);
  sim::Metrics registry(1);
  cache.attach_metrics(&registry);

  std::printf("bench_serve: scale=%s requests=%d seed=%llu cache-cap=%zu backend=%s%s\n",
              smoke ? "smoke" : (quick ? "quick" : "default"), requests,
              static_cast<unsigned long long>(seed), cache_cap,
              sim::backend_name(machine_opts.backend), exact ? " (exact)" : "");

  // Shared modeled service-time model: every batch streams the factors once
  // and pays k columns of substitution flops, at the simulator's T3D rates.
  const std::shared_ptr<const Preconditioner> factor = cache.get(g0.a, serial_opts);
  const auto* ilu = dynamic_cast<const IluPreconditioner*>(factor.get());
  PTILU_CHECK(ilu != nullptr, "serve bench expects a scalar ILUT factor");
  const auto nnz_l = static_cast<std::uint64_t>(ilu->factors().l.nnz());
  const auto nnz_u = static_cast<std::uint64_t>(ilu->factors().u.nnz());
  const sim::MachineParams rates = sim::MachineParams::cray_t3d();
  const auto modeled_service = [&](int k) {
    return serve::modeled_batch_service_s(k, n, nnz_l, nnz_u, rates.flop, rates.mem);
  };

  // Oversubscribe the k=1 server (arrivals 8x faster than it can solve):
  // under this load the batch caps separate cleanly, and solves/sec
  // becomes a measurement of per-batch service cost, i.e. of the batched
  // kernels themselves.
  serve::TrafficOptions traffic;
  traffic.requests = requests;
  traffic.mean_interarrival_s = modeled_service(1) / 8.0;
  traffic.seed = seed;
  const std::vector<serve::Request> schedule = serve::make_schedule(traffic);

  // --- apply_benches: queue the same schedule at each batch cap.
  std::vector<ApplyBench> apply_benches;
  for (const int batch_max : batch_caps) {
    PTILU_CHECK(batch_max >= 1, "--batch entries must be >= 1");
    ApplyBench bench;
    bench.batch_max = batch_max;
    const std::vector<serve::Batch> plan =
        serve::plan_serve(schedule, batch_max, modeled_service);
    bench.batches = plan.size();

    std::vector<double> planned_s(plan.size());
    for (std::size_t b = 0; b < plan.size(); ++b) planned_s[b] = plan[b].service_s;
    bench.modeled = serve::replay_latencies(plan, schedule, planned_s);

    // Execute every batch for real through the cache-held factor; the same
    // factor serves every batch cap, so after the first miss this loop is
    // all cache hits. Wall time per batch feeds the replay; the solve
    // values feed the checksum either way.
    const std::shared_ptr<const Preconditioner> served = cache.get(g0.a, serial_opts);
    std::vector<double> wall_s(plan.size(), 0.0);
    for (std::size_t b = 0; b < plan.size(); ++b) {
      const serve::Batch& batch = plan[b];
      DenseRhsBlock rhs(n, batch.count);
      for (int c = 0; c < batch.count; ++c) {
        rhs.set_col(c, serve::make_rhs(
                           n, schedule[static_cast<std::size_t>(batch.first + c)].rhs_seed));
      }
      DenseRhsBlock x(n, batch.count);
      WallTimer timer;
      serve::apply_batch(*served, rhs, x);
      wall_s[b] = timer.seconds();
      bench.checksum += block_checksum(x);
    }
    if (!exact) {
      // Closed-loop wall replay: same batches, arrivals pinned to t=0 (see
      // the file comment — modeled arrivals and wall seconds are different
      // axes), so wall_total_s is the pure back-to-back service time.
      std::vector<serve::Request> saturated = schedule;
      for (serve::Request& request : saturated) request.arrival_s = 0.0;
      bench.wall = serve::replay_latencies(plan, saturated, wall_s);
      bench.measured = true;
    }

    const double modeled_rate = static_cast<double>(requests) / bench.modeled.total_s;
    std::printf("apply  batch<=%-2d %4zu batches  modeled %8.1f solves/s  p99 %.3e s",
                batch_max, bench.batches, modeled_rate,
                serve::quantile(bench.modeled.latency_s, 0.99));
    if (bench.measured) {
      std::printf("  wall %8.1f solves/s",
                  static_cast<double>(requests) / bench.wall.total_s);
    }
    std::printf("\n");
    apply_benches.push_back(std::move(bench));
  }

  // The headline ratio the acceptance gate watches: wall solves/sec at the
  // largest batch cap over batch cap 1.
  if (!exact && apply_benches.size() >= 2 && apply_benches.front().batch_max == 1) {
    const ApplyBench& widest = apply_benches.back();
    const double ratio = apply_benches.front().wall.total_s / widest.wall.total_s;
    std::printf("batched wall speedup (batch<=%d vs 1): %.2fx\n", widest.batch_max, ratio);
  }

  // --- stream_benches: c concurrent GMRES streams, one shared factor.
  std::vector<StreamBench> stream_benches;
  const int stream_solves = smoke ? 8 : (quick ? 12 : 24);
  for (const int streams : stream_counts) {
    PTILU_CHECK(streams >= 1, "--streams entries must be >= 1");
    StreamBench bench;
    bench.streams = streams;
    bench.solves = stream_solves;
    const std::shared_ptr<const Preconditioner> shared = cache.get(g0.a, serial_opts);
    std::vector<double> stream_sums(static_cast<std::size_t>(streams), 0.0);
    std::vector<long long> stream_matvecs(static_cast<std::size_t>(streams), 0);
    WallTimer timer;
    {
      std::vector<std::thread> pool;
      pool.reserve(static_cast<std::size_t>(streams));
      for (int s = 0; s < streams; ++s) {
        pool.emplace_back([&, s]() {
          // Stream s owns solves s, s+streams, s+2*streams, ... — a fixed
          // partition, so the per-stream sums (and therefore the checksum)
          // do not depend on thread scheduling.
          for (int q = s; q < stream_solves; q += streams) {
            const RealVec b = serve::make_rhs(
                n, mix64(seed ^ (0xB0A715ULL + static_cast<std::uint64_t>(q))));
            RealVec x(static_cast<std::size_t>(n), 0.0);
            const GmresResult solve = gmres(g0.a, *shared, b, x, {.restart = 20});
            stream_sums[static_cast<std::size_t>(s)] +=
                solve.final_residual + static_cast<double>(solve.matvecs);
            stream_matvecs[static_cast<std::size_t>(s)] += solve.matvecs;
          }
        });
      }
      for (std::thread& t : pool) t.join();
    }
    bench.wall_total_s = timer.seconds();
    bench.measured = !exact;
    for (int s = 0; s < streams; ++s) {
      bench.checksum += stream_sums[static_cast<std::size_t>(s)];
      bench.matvecs += stream_matvecs[static_cast<std::size_t>(s)];
    }
    std::printf("stream c=%-2d %d solves  checksum %.6g", streams, bench.solves,
                bench.checksum);
    if (bench.measured) {
      std::printf("  wall %6.1f solves/s",
                  static_cast<double>(bench.solves) / bench.wall_total_s);
    }
    std::printf("\n");
    stream_benches.push_back(bench);
  }

  // --- dist_benches: batched vs single-RHS distributed trisolve applies.
  std::vector<DistBench> dist_benches;
  {
    DistBench bench;
    bench.procs = procs;
    bench.k = dist_k;
    const DistCsr dist = bench::distribute(g0.a, procs);
    sim::Machine machine(procs, machine_opts);
    const PilutOptions pilut_opts{.m = 10, .tau = 1e-4, .pivot_rel = 1e-12};
    const PilutResult fact = pilut_factor(machine, dist, pilut_opts);
    const DistTriangularSolver solver(fact.factors, fact.schedule);

    DenseRhsBlock rhs(n, dist_k);
    for (int c = 0; c < dist_k; ++c) {
      rhs.set_col(c, serve::make_rhs(
                         n, mix64(seed ^ (0xD157ULL + static_cast<std::uint64_t>(c)))));
    }

    machine.reset();
    RealVec x_single(static_cast<std::size_t>(n));
    for (int c = 0; c < dist_k; ++c) {
      const RealVec b(rhs.col(c).begin(), rhs.col(c).end());
      solver.apply(machine, b, x_single);
      for (const real v : x_single) bench.checksum += v;
    }
    bench.modeled_single_s = machine.modeled_time();
    bench.single_messages = machine.total_counters().messages_sent;

    machine.reset();
    DenseRhsBlock x_batched(n, dist_k);
    solver.apply(machine, rhs, x_batched);
    bench.modeled_batched_s = machine.modeled_time();
    bench.batched_messages = machine.total_counters().messages_sent;
    std::printf("dist   p=%-3d k=%d  modeled %.3e s batched vs %.3e s single (%.2fx), "
                "messages %llu vs %llu\n",
                procs, dist_k, bench.modeled_batched_s, bench.modeled_single_s,
                bench.modeled_single_s / bench.modeled_batched_s,
                static_cast<unsigned long long>(bench.batched_messages),
                static_cast<unsigned long long>(bench.single_messages));
    dist_benches.push_back(bench);
  }

  const serve::CacheStats& cache_stats = cache.stats();
  std::printf("cache  cap=%zu hits=%llu misses=%llu evictions=%llu\n", cache.capacity(),
              static_cast<unsigned long long>(cache_stats.hits),
              static_cast<unsigned long long>(cache_stats.misses),
              static_cast<unsigned long long>(cache_stats.evictions));
  // stats() and the attached registry must always tell the same story.
  PTILU_CHECK(registry.counter_value("serve/cache/hits", 0) == cache_stats.hits &&
                  registry.counter_value("serve/cache/misses", 0) == cache_stats.misses &&
                  registry.counter_value("serve/cache/evictions", 0) == cache_stats.evictions,
              "cache stats / metrics registry mismatch");

  // Deterministic payload checksum: everything modeled, nothing wall.
  std::string payload = "ptilu-bench-serve-v1;";
  payload += g0.name + ";";
  payload += std::to_string(n) + ";" + std::to_string(g0.a.nnz()) + ";";
  payload += std::to_string(requests) + ";" + std::to_string(seed) + ";";
  payload += std::to_string(cache_stats.hits) + ";" + std::to_string(cache_stats.misses) +
             ";" + std::to_string(cache_stats.evictions) + ";";
  for (const ApplyBench& bench : apply_benches) {
    payload += "apply:" + std::to_string(bench.batch_max) + ":" +
               std::to_string(bench.batches) + ";";
    append_g(payload, "total", bench.modeled.total_s);
    append_g(payload, "p50", serve::quantile(bench.modeled.latency_s, 0.50));
    append_g(payload, "p99", serve::quantile(bench.modeled.latency_s, 0.99));
    append_g(payload, "sum", bench.checksum);
  }
  for (const StreamBench& bench : stream_benches) {
    payload += "stream:" + std::to_string(bench.streams) + ":" +
               std::to_string(bench.matvecs) + ";";
    append_g(payload, "sum", bench.checksum);
  }
  for (const DistBench& bench : dist_benches) {
    payload += "dist:" + std::to_string(bench.procs) + ":" + std::to_string(bench.k) + ":" +
               std::to_string(bench.batched_messages) + ":" +
               std::to_string(bench.single_messages) + ";";
    append_g(payload, "batched", bench.modeled_batched_s);
    append_g(payload, "single", bench.modeled_single_s);
    append_g(payload, "sum", bench.checksum);
  }
  const std::uint64_t payload_checksum = fnv1a(payload);
  std::printf("payload checksum %016llx\n",
              static_cast<unsigned long long>(payload_checksum));

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    PTILU_CHECK(f != nullptr, "cannot open " << json_path << " for writing");
    std::fprintf(f, "{\n  \"schema\": \"ptilu-bench-serve-v1\",\n");
    std::fprintf(f, "  \"smoke\": %s,\n  \"quick\": %s,\n", smoke ? "true" : "false",
                 quick ? "true" : "false");
    std::fprintf(f, "  \"backend\": \"%s\",\n  \"threads\": %d,\n  \"exact\": %s,\n",
                 sim::backend_name(machine_opts.backend), machine_opts.threads,
                 exact ? "true" : "false");
    std::fprintf(f, "  \"workload\": \"%s\",\n  \"n\": %d,\n  \"nnz\": %lld,\n",
                 g0.name.c_str(), n, static_cast<long long>(g0.a.nnz()));
    std::fprintf(f, "  \"requests\": %d,\n  \"seed\": %llu,\n", requests,
                 static_cast<unsigned long long>(seed));
    std::fprintf(f, "  \"mean_interarrival_s\": %.17g,\n", traffic.mean_interarrival_s);
    std::fprintf(f,
                 "  \"cache\": {\"capacity\": %zu, \"hits\": %llu, \"misses\": %llu, "
                 "\"evictions\": %llu},\n",
                 cache.capacity(), static_cast<unsigned long long>(cache_stats.hits),
                 static_cast<unsigned long long>(cache_stats.misses),
                 static_cast<unsigned long long>(cache_stats.evictions));
    std::fprintf(f, "  \"apply_benches\": [\n");
    for (std::size_t i = 0; i < apply_benches.size(); ++i) {
      const ApplyBench& bench = apply_benches[i];
      std::fprintf(f,
                   "    {\"name\": \"apply_b%d\", \"batch_max\": %d, \"batches\": %zu,\n",
                   bench.batch_max, bench.batch_max, bench.batches);
      std::fprintf(f,
                   "     \"modeled_total_s\": %.17g, \"modeled_solves_per_s\": %.17g,\n"
                   "     \"modeled_p50_s\": %.17g, \"modeled_p99_s\": %.17g,\n",
                   bench.modeled.total_s,
                   static_cast<double>(requests) / bench.modeled.total_s,
                   serve::quantile(bench.modeled.latency_s, 0.50),
                   serve::quantile(bench.modeled.latency_s, 0.99));
      if (bench.measured) {
        std::fprintf(f,
                     "     \"wall_total_s\": %.6f, \"wall_solves_per_s\": %.6f,\n"
                     "     \"wall_p50_s\": %.6f, \"wall_p99_s\": %.6f,\n",
                     bench.wall.total_s,
                     static_cast<double>(requests) / bench.wall.total_s,
                     serve::quantile(bench.wall.latency_s, 0.50),
                     serve::quantile(bench.wall.latency_s, 0.99));
      }
      std::fprintf(f, "     \"checksum\": %.17g}%s\n", bench.checksum,
                   i + 1 < apply_benches.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"stream_benches\": [\n");
    for (std::size_t i = 0; i < stream_benches.size(); ++i) {
      const StreamBench& bench = stream_benches[i];
      std::fprintf(f, "    {\"streams\": %d, \"solves\": %d, \"matvecs\": %lld,\n",
                   bench.streams, bench.solves, bench.matvecs);
      if (bench.measured) {
        std::fprintf(f, "     \"wall_total_s\": %.6f, \"wall_solves_per_s\": %.6f,\n",
                     bench.wall_total_s,
                     static_cast<double>(bench.solves) / bench.wall_total_s);
      }
      std::fprintf(f, "     \"checksum\": %.17g}%s\n", bench.checksum,
                   i + 1 < stream_benches.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"dist_benches\": [\n");
    for (std::size_t i = 0; i < dist_benches.size(); ++i) {
      const DistBench& bench = dist_benches[i];
      std::fprintf(f, "    {\"procs\": %d, \"k\": %d,\n", bench.procs, bench.k);
      std::fprintf(f,
                   "     \"modeled_batched_s\": %.17g, \"modeled_single_s\": %.17g, "
                   "\"modeled_speedup\": %.17g,\n",
                   bench.modeled_batched_s, bench.modeled_single_s,
                   bench.modeled_single_s / bench.modeled_batched_s);
      std::fprintf(f, "     \"batched_messages\": %llu, \"single_messages\": %llu,\n",
                   static_cast<unsigned long long>(bench.batched_messages),
                   static_cast<unsigned long long>(bench.single_messages));
      std::fprintf(f, "     \"checksum\": %.17g}%s\n", bench.checksum,
                   i + 1 < dist_benches.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"payload_checksum\": \"%016llx\"\n}\n",
                 static_cast<unsigned long long>(payload_checksum));
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
