// Preconditioner-as-a-service benchmark: seeded synthetic traffic against
// a FactorCache-backed solve service, measuring what batching and factor
// reuse buy at serving time.
//
// Three bench families, one JSON file ("ptilu-bench-serve-v1"):
//
//  * apply_benches — the core serving loop. A deterministic Poisson
//    arrival schedule (serve/traffic.hpp; modeled seconds, never the wall
//    clock) is pushed through the single-server FIFO batching policy of
//    serve/solve_service.hpp at several --batch caps. Batch formation uses
//    MODELED service times, so WHICH requests batch together is identical
//    on every backend and every run; each planned batch is then executed
//    for real through the batched DenseRhsBlock trisolves and its measured
//    wall time replayed through the same queueing recursion, yielding wall
//    p50/p99 latency and solves/sec for identical batching decisions.
//    Arrival times live on the modeled axis and cannot be meaningfully
//    compared against wall seconds, so the wall replay is CLOSED-LOOP:
//    every request is treated as already queued at t=0 and the frozen
//    batches run back-to-back — wall_total_s is exactly the sum of the
//    measured batch times, and wall latency is time-in-system under full
//    backlog. The arrival rate oversubscribes the modeled k=1 server, so
//    the wall throughput ratio between --batch=8 and --batch=1 exposes the
//    batched kernels' own speedup (factor streamed once per batch, k
//    register-resident accumulators).
//
//  * stream_benches — c host threads each running serial preconditioned
//    GMRES end to end against ONE shared cached factor (the pipelined
//    front-end; apply is const and thread-safe by construction). The
//    checksum folds every stream's residuals/matvecs in stream order, so
//    it is identical no matter how the OS schedules the threads — the
//    tsan preset runs exactly this bench's test-suite twin.
//
//  * dist_benches — the simulated-parallel side: one batched
//    DistTriangularSolver::apply over k right-hand sides versus k
//    single-RHS applies on the same machine, comparing modeled time and
//    message counts (the batched level sweep sends ONE message pair per
//    peer per level regardless of k).
//
// Serving telemetry (serve/telemetry.hpp, docs/SERVING.md §6) rides the
// apply and stream benches: every request's lifecycle is journaled into
// an EventLog (exported as Chrome trace spans with --serve-trace), modeled
// latencies stream into sharded-and-merged LatencyHistograms whose
// quantiles are checked against the exact SortedSample within the
// documented bucket-resolution bound, every batch is decomposed by
// attribute_batches (queue-wait / cache-resolve / per-column solve, with
// first-argmax straggler elections and lane rollups), and the final
// stream bench is decomposed by attribute_streams. --serve-report writes
// the versioned "ptilu-serve-report-v1" JSON (serve/serve_report.hpp),
// which scripts/check_serve_report.py re-derives identity by identity;
// the report carries no backend or wall fields, so the same command on
// both backends produces byte-identical files.
//
// The top-level "payload_checksum" is an FNV-1a 64 hash over the
// deterministic fields only (modeled numbers, checksums, cache counters —
// never wall-clock), so two runs on different backends must produce the
// same value. With --exact all wall_* fields are omitted from the JSON,
// making the whole file byte-comparable across runs and backends; CI and
// the determinism ctests diff exactly that.
//
// Flags: --smoke / --quick (problem size), --requests=N, --batch=LIST
// (batch caps for apply_benches), --streams=LIST (thread counts for
// stream_benches), --procs=P and --dist-k=K (dist_benches shape),
// --seed=N, --cache-cap=N (FactorCache capacity; default from
// PTILU_SERVE_CACHE_CAP), --json=PATH, --exact (deterministic-only JSON),
// --serve-report[=PATH] (ptilu-serve-report-v1; default serve_report.json),
// --serve-trace[=PATH] (lifecycle Chrome trace; default serve_trace.json),
// --trace/--trace-dir and --report/--report-dir (shared harness
// observability: an observed rerun of the dist bench with per-phase
// breakdown and the standard ptilu-report-v2 run report),
// --backend=<sequential|threads> / --threads=N (simulated-machine backend
// for dist_benches, default from PTILU_BACKEND / PTILU_THREADS).
#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "ptilu/ilu/ilut.hpp"
#include "ptilu/ilu/rhs_block.hpp"
#include "ptilu/krylov/gmres.hpp"
#include "ptilu/krylov/preconditioner.hpp"
#include "ptilu/pilut/trisolve_dist.hpp"
#include "ptilu/serve/factor_cache.hpp"
#include "ptilu/serve/serve_report.hpp"
#include "ptilu/serve/solve_service.hpp"
#include "ptilu/serve/telemetry.hpp"
#include "ptilu/serve/traffic.hpp"
#include "ptilu/support/rng.hpp"
#include "ptilu/support/timer.hpp"

namespace {

using namespace ptilu;
using bench::TestMatrix;

/// Latencies are split round-robin into this many shard histograms and
/// merged back — exercising (and counting) the mergeable-histogram path
/// the way a multi-worker frontend would use it. Merging is element-wise
/// count addition, so the merged histogram is bit-identical to recording
/// into one histogram directly (test_serve_telemetry pins this).
constexpr int kHistShards = 4;

struct ApplyBench {
  int batch_max = 0;
  std::size_t batches = 0;
  serve::ServeReport modeled;
  serve::ServeReport wall;  // valid only when `measured`
  bool measured = false;
  double checksum = 0.0;
  double exact_p50 = 0.0, exact_p99 = 0.0;  ///< SortedSample reads (modeled)
  double hist_p50 = 0.0, hist_p99 = 0.0;    ///< LatencyHistogram reads (modeled)
  double wall_p50 = 0.0, wall_p99 = 0.0;    ///< valid only when `measured`
};

struct StreamBench {
  int streams = 0;
  int solves = 0;
  long long matvecs = 0;
  double wall_total_s = 0.0;  // valid only when `measured`
  bool measured = false;
  double checksum = 0.0;
};

struct DistBench {
  int procs = 0;
  int k = 0;
  double modeled_batched_s = 0.0;
  double modeled_single_s = 0.0;
  std::uint64_t batched_messages = 0;
  std::uint64_t single_messages = 0;
  double checksum = 0.0;
};

double block_checksum(const DenseRhsBlock& x) {
  double sum = 0.0;
  for (const real v : x.data) sum += v;
  return sum;
}

/// FNV-1a 64 over a string: the payload checksum hashes the deterministic
/// report fields serialized with the same %.17g the JSON writer uses, so
/// "same checksum" means "same deterministic payload".
std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t hash = 1469598103934665603ULL;
  for (const char c : s) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;
  }
  return hash;
}

void append_g(std::string& out, const char* key, double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%s=%.17g;", key, value);
  out += buffer;
}

std::string format_g(double value) {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const bool smoke = cli.get_bool("smoke", false);
  const bool quick = cli.get_bool("quick", false);
  bench::Scale scale;
  if (smoke) {
    scale = {48, 48, 8, 8, 12};
  } else if (quick) {
    scale = {96, 96, 16, 16, 24};
  }
  const int requests = static_cast<int>(cli.get_int("requests", smoke ? 48 : (quick ? 96 : 256)));
  const std::vector<int> batch_caps = cli.get_int_list("batch", {1, 2, 4, 8});
  const std::vector<int> stream_counts =
      cli.get_int_list("streams", smoke ? std::vector<int>{1, 2} : std::vector<int>{1, 2, 4});
  const int procs = static_cast<int>(cli.get_int("procs", 4));
  const int dist_k = static_cast<int>(cli.get_int("dist-k", 8));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  const auto cache_cap = static_cast<std::size_t>(
      cli.get_int("cache-cap", static_cast<long long>(serve::FactorCache::capacity_from_env())));
  const std::string json_path = cli.get_string("json", "");
  const bool exact = cli.get_bool("exact", false);
  // Bare --serve-report / --serve-trace parse as the value "true": treat
  // that as "use the default file name in the working directory".
  std::string serve_report_path = cli.get_string("serve-report", "");
  if (serve_report_path == "true") serve_report_path = "serve_report.json";
  std::string serve_trace_path = cli.get_string("serve-trace", "");
  if (serve_trace_path == "true") serve_trace_path = "serve_trace.json";
  const sim::Machine::Options machine_opts = bench::machine_options_from_cli(cli);
  bench::Observability obs(cli, "serve");
  cli.check_all_consumed();
  PTILU_CHECK(requests >= 1 && procs >= 1 && dist_k >= 1, "invalid bench shape");

  const TestMatrix g0 = bench::build_g0(scale);
  const idx n = g0.a.n_rows;
  const auto nnz = static_cast<std::uint64_t>(g0.a.nnz());
  const IlutOptions serial_opts{.m = 10, .tau = 1e-4, .pivot_rel = 1e-12};

  serve::FactorCache cache(cache_cap);
  sim::Metrics registry(1);
  cache.attach_metrics(&registry);
  serve::ServeTelemetry telemetry;
  telemetry.attach_metrics(&registry);
  serve::EventLog event_log;

  std::printf("bench_serve: scale=%s requests=%d seed=%llu cache-cap=%zu backend=%s%s\n",
              smoke ? "smoke" : (quick ? "quick" : "default"), requests,
              static_cast<unsigned long long>(seed), cache_cap,
              sim::backend_name(machine_opts.backend), exact ? " (exact)" : "");

  // Shared modeled cost model: every batch pays one cache resolve
  // (fingerprint probe), streams the factors once, and pays k columns of
  // substitution flops, at the simulator's T3D rates. costs.total_s IS the
  // planned service time, so the telemetry decomposition re-sums to the
  // plan bit-exactly.
  const std::shared_ptr<const Preconditioner> factor = cache.get(g0.a, serial_opts);
  const auto* ilu = dynamic_cast<const IluPreconditioner*>(factor.get());
  PTILU_CHECK(ilu != nullptr, "serve bench expects a scalar ILUT factor");
  const auto nnz_l = static_cast<std::uint64_t>(ilu->factors().l.nnz());
  const auto nnz_u = static_cast<std::uint64_t>(ilu->factors().u.nnz());
  const sim::MachineParams rates = sim::MachineParams::cray_t3d();
  const serve::BatchCostModel costs =
      serve::modeled_batch_costs(n, nnz, nnz_l, nnz_u, rates.flop, rates.mem);
  const std::uint64_t fingerprint = serve::matrix_fingerprint(g0.a);
  const auto modeled_service = [&](int k) { return costs.total_s(k); };

  // Oversubscribe the k=1 server (arrivals 8x faster than it can solve):
  // under this load the batch caps separate cleanly, and solves/sec
  // becomes a measurement of per-batch service cost, i.e. of the batched
  // kernels themselves.
  serve::TrafficOptions traffic;
  traffic.requests = requests;
  traffic.mean_interarrival_s = modeled_service(1) / 8.0;
  traffic.seed = seed;
  const std::vector<serve::Request> schedule = serve::make_schedule(traffic);

  // --- apply_benches: queue the same schedule at each batch cap.
  std::vector<ApplyBench> apply_benches;
  std::vector<serve::ApplySection> apply_sections;
  for (const int batch_max : batch_caps) {
    PTILU_CHECK(batch_max >= 1, "--batch entries must be >= 1");
    ApplyBench bench;
    bench.batch_max = batch_max;
    const std::vector<serve::Batch> plan =
        serve::plan_serve(schedule, batch_max, modeled_service);
    bench.batches = plan.size();

    std::vector<double> planned_s(plan.size());
    for (std::size_t b = 0; b < plan.size(); ++b) planned_s[b] = plan[b].service_s;
    bench.modeled = serve::replay_latencies(plan, schedule, planned_s);

    // Decompose every planned batch: queue-wait per member, resolve /
    // shared-stream / per-column costs, first-argmax straggler, lane
    // rollups. attribute_batches re-runs the queue recursion and throws
    // if the plan was not formed from this schedule and cost model.
    serve::ApplyAttribution attribution =
        serve::attribute_batches(schedule, plan, costs, batch_max, &telemetry);

    // Execute every batch for real through the cache-held factor — one
    // cache resolve per batch, exactly as the cost model charges. The same
    // factor serves every batch, so after the warmup miss this loop is all
    // cache hits; the hit/miss outcome per batch feeds the event log and
    // the serve report. Wall time per batch feeds the replay; the solve
    // values feed the checksum either way.
    std::vector<bool> cache_hits(plan.size(), false);
    std::vector<double> wall_s(plan.size(), 0.0);
    std::vector<double> wall_done_s(plan.size(), 0.0);
    WallTimer cap_timer;
    for (std::size_t b = 0; b < plan.size(); ++b) {
      const serve::Batch& batch = plan[b];
      const std::uint64_t hits_before = cache.stats().hits;
      const std::shared_ptr<const Preconditioner> served = cache.get(g0.a, serial_opts);
      cache_hits[b] = cache.stats().hits > hits_before;
      DenseRhsBlock rhs(n, batch.count);
      for (int c = 0; c < batch.count; ++c) {
        rhs.set_col(c, serve::make_rhs(
                           n, schedule[static_cast<std::size_t>(batch.first + c)].rhs_seed));
      }
      DenseRhsBlock x(n, batch.count);
      WallTimer timer;
      serve::apply_batch(*served, rhs, x);
      wall_s[b] = timer.seconds();
      wall_done_s[b] = cap_timer.seconds();
      bench.checksum += block_checksum(x);
    }

    // Journal the full lifecycle of this cap's plan: enqueue → resolve →
    // admit → solve start → complete, modeled timestamps throughout, wall
    // completion stamps when measuring (never under --exact).
    event_log.begin_group("apply b<=" + std::to_string(batch_max));
    serve::append_lifecycle_events(event_log, schedule, attribution, costs, fingerprint,
                                   cache_hits,
                                   exact ? std::vector<double>{} : wall_done_s);

    // Modeled latencies through the mergeable histogram, sharded the way a
    // multi-worker frontend would shard them, then merged. Σ counts must
    // equal the requests served — the exact-count identity.
    std::vector<serve::LatencyHistogram> shards(kHistShards);
    for (std::size_t r = 0; r < bench.modeled.latency_s.size(); ++r) {
      shards[r % kHistShards].record(bench.modeled.latency_s[r]);
    }
    for (int s = 1; s < kHistShards; ++s) shards[0].merge(shards[static_cast<std::size_t>(s)], &telemetry);
    const serve::LatencyHistogram& hist = shards[0];
    PTILU_CHECK(hist.total() == static_cast<std::uint64_t>(requests),
                "histogram bucket counts must sum to the requests served");

    // Both quantile paths read the SAME sample: the histogram returns the
    // bucket's upper edge, so it must bound the exact quantile from above
    // within the documented 1/kSubBuckets resolution.
    const serve::SortedSample sample(bench.modeled.latency_s);
    bench.exact_p50 = sample.quantile(0.50);
    bench.exact_p99 = sample.quantile(0.99);
    bench.hist_p50 = hist.quantile(0.50);
    bench.hist_p99 = hist.quantile(0.99);
    const double bound = 1.0 + serve::LatencyHistogram::relative_error_bound();
    PTILU_CHECK(bench.hist_p50 > bench.exact_p50 && bench.hist_p50 <= bench.exact_p50 * bound &&
                    bench.hist_p99 > bench.exact_p99 && bench.hist_p99 <= bench.exact_p99 * bound,
                "histogram quantiles outside the bucket-resolution bound");

    if (!exact) {
      // Closed-loop wall replay: same batches, arrivals pinned to t=0 (see
      // the file comment — modeled arrivals and wall seconds are different
      // axes), so wall_total_s is the pure back-to-back service time.
      std::vector<serve::Request> saturated = schedule;
      for (serve::Request& request : saturated) request.arrival_s = 0.0;
      bench.wall = serve::replay_latencies(plan, saturated, wall_s);
      const serve::SortedSample wall_sample(bench.wall.latency_s);
      bench.wall_p50 = wall_sample.quantile(0.50);
      bench.wall_p99 = wall_sample.quantile(0.99);
      bench.measured = true;
    }

    serve::ApplySection section;
    section.cap = batch_max;
    section.n = n;
    section.nnz = nnz;
    section.nnz_l = nnz_l;
    section.nnz_u = nnz_u;
    section.fingerprint = fingerprint;
    section.costs = costs;
    section.attribution = std::move(attribution);
    section.cache_hit = cache_hits;
    section.hist = hist;
    section.hist_p50 = bench.hist_p50;
    section.hist_p99 = bench.hist_p99;
    section.exact_p50 = bench.exact_p50;
    section.exact_p99 = bench.exact_p99;
    apply_sections.push_back(std::move(section));

    const double modeled_rate = static_cast<double>(requests) / bench.modeled.total_s;
    std::printf("apply  batch<=%-2d %4zu batches  modeled %8.1f solves/s  p99 %.3e s"
                " (hist %.3e s)  straggler lane %d",
                batch_max, bench.batches, modeled_rate, bench.exact_p99, bench.hist_p99,
                apply_sections.back().attribution.batches.front().straggler_column);
    if (bench.measured) {
      std::printf("  wall %8.1f solves/s",
                  static_cast<double>(requests) / bench.wall.total_s);
    }
    std::printf("\n");
    apply_benches.push_back(std::move(bench));
  }

  // The headline ratio the acceptance gate watches: wall solves/sec at the
  // largest batch cap over batch cap 1.
  if (!exact && apply_benches.size() >= 2 && apply_benches.front().batch_max == 1) {
    const ApplyBench& widest = apply_benches.back();
    const double ratio = apply_benches.front().wall.total_s / widest.wall.total_s;
    std::printf("batched wall speedup (batch<=%d vs 1): %.2fx\n", widest.batch_max, ratio);
  }

  // --- stream_benches: c concurrent GMRES streams, one shared factor.
  std::vector<StreamBench> stream_benches;
  const int stream_solves = smoke ? 8 : (quick ? 12 : 24);
  // Per-solve matvec counts, recorded by solve id: solve q's iteration
  // count is a property of (matrix, rhs seed), not of the thread count, so
  // every stream bench writes the same values. They feed the stream
  // attribution below.
  std::vector<long long> solve_matvecs(static_cast<std::size_t>(stream_solves), 0);
  for (const int streams : stream_counts) {
    PTILU_CHECK(streams >= 1, "--streams entries must be >= 1");
    StreamBench bench;
    bench.streams = streams;
    bench.solves = stream_solves;
    const std::shared_ptr<const Preconditioner> shared = cache.get(g0.a, serial_opts);
    std::vector<double> stream_sums(static_cast<std::size_t>(streams), 0.0);
    std::vector<long long> stream_matvecs(static_cast<std::size_t>(streams), 0);
    WallTimer timer;
    {
      std::vector<std::thread> pool;
      pool.reserve(static_cast<std::size_t>(streams));
      for (int s = 0; s < streams; ++s) {
        pool.emplace_back([&, s]() {
          // Stream s owns solves s, s+streams, s+2*streams, ... — a fixed
          // partition, so the per-stream sums (and therefore the checksum)
          // do not depend on thread scheduling, and solve_matvecs[q] has
          // exactly one writer.
          for (int q = s; q < stream_solves; q += streams) {
            const RealVec b = serve::make_rhs(
                n, mix64(seed ^ (0xB0A715ULL + static_cast<std::uint64_t>(q))));
            RealVec x(static_cast<std::size_t>(n), 0.0);
            const GmresResult solve = gmres(g0.a, *shared, b, x, {.restart = 20});
            stream_sums[static_cast<std::size_t>(s)] +=
                solve.final_residual + static_cast<double>(solve.matvecs);
            stream_matvecs[static_cast<std::size_t>(s)] += solve.matvecs;
            solve_matvecs[static_cast<std::size_t>(q)] = solve.matvecs;
          }
        });
      }
      for (std::thread& t : pool) t.join();
    }
    bench.wall_total_s = timer.seconds();
    bench.measured = !exact;
    for (int s = 0; s < streams; ++s) {
      bench.checksum += stream_sums[static_cast<std::size_t>(s)];
      bench.matvecs += stream_matvecs[static_cast<std::size_t>(s)];
    }
    std::printf("stream c=%-2d %d solves  checksum %.6g", streams, bench.solves,
                bench.checksum);
    if (bench.measured) {
      std::printf("  wall %6.1f solves/s",
                  static_cast<double>(bench.solves) / bench.wall_total_s);
    }
    std::printf("\n");
    stream_benches.push_back(bench);
  }

  // Attribute the widest stream sweep: solve q costs matvecs[q] modeled
  // GMRES iterations, rounds barrier at the slowest stream (first-argmax
  // straggler election), per-stream busy/idle/imbalance roll up — real
  // variance, since iteration counts differ across right-hand sides.
  const double step_s =
      serve::modeled_stream_step_s(n, nnz, nnz_l, nnz_u, rates.flop, rates.mem);
  const serve::StreamAttribution stream_attr =
      serve::attribute_streams(stream_counts.back(), solve_matvecs, step_s, &telemetry);
  std::printf("stream attribution c=%d: %zu rounds  modeled %.3e s  imbalance %.3f\n",
              stream_attr.streams, stream_attr.rounds.size(), stream_attr.elapsed_s,
              stream_attr.imbalance);

  // --- dist_benches: batched vs single-RHS distributed trisolve applies.
  std::vector<DistBench> dist_benches;
  {
    DistBench bench;
    bench.procs = procs;
    bench.k = dist_k;
    const DistCsr dist = bench::distribute(g0.a, procs);
    sim::Machine machine(procs, machine_opts);
    const PilutOptions pilut_opts{.m = 10, .tau = 1e-4, .pivot_rel = 1e-12};
    const PilutResult fact = pilut_factor(machine, dist, pilut_opts);
    const DistTriangularSolver solver(fact.factors, fact.schedule);

    DenseRhsBlock rhs(n, dist_k);
    for (int c = 0; c < dist_k; ++c) {
      rhs.set_col(c, serve::make_rhs(
                         n, mix64(seed ^ (0xD157ULL + static_cast<std::uint64_t>(c)))));
    }

    machine.reset();
    RealVec x_single(static_cast<std::size_t>(n));
    for (int c = 0; c < dist_k; ++c) {
      const RealVec b(rhs.col(c).begin(), rhs.col(c).end());
      solver.apply(machine, b, x_single);
      for (const real v : x_single) bench.checksum += v;
    }
    bench.modeled_single_s = machine.modeled_time();
    bench.single_messages = machine.total_counters().messages_sent;

    machine.reset();
    DenseRhsBlock x_batched(n, dist_k);
    solver.apply(machine, rhs, x_batched);
    bench.modeled_batched_s = machine.modeled_time();
    bench.batched_messages = machine.total_counters().messages_sent;
    std::printf("dist   p=%-3d k=%d  modeled %.3e s batched vs %.3e s single (%.2fx), "
                "messages %llu vs %llu\n",
                procs, dist_k, bench.modeled_batched_s, bench.modeled_single_s,
                bench.modeled_single_s / bench.modeled_batched_s,
                static_cast<unsigned long long>(bench.batched_messages),
                static_cast<unsigned long long>(bench.single_messages));
    dist_benches.push_back(bench);

    if (obs.enabled()) {
      // Observed rerun of the batched dist solve with the shared harness
      // observability (trace rollups / metrics report) attached — the
      // measurement runs above stay uninstrumented.
      sim::Machine observed(procs, obs.machine_options(machine_opts));
      obs.attach(observed);
      const PilutResult ofact = pilut_factor(observed, dist, pilut_opts);
      const DistTriangularSolver osolver(ofact.factors, ofact.schedule);
      DenseRhsBlock x_obs(n, dist_k);
      osolver.apply(observed, rhs, x_obs);
      const std::string label =
          "dist p=" + std::to_string(procs) + " k=" + std::to_string(dist_k);
      obs.report(observed, label,
                 {{"procs", std::to_string(procs)}, {"k", std::to_string(dist_k)}});
    }
  }

  const serve::CacheStats& cache_stats = cache.stats();
  std::printf("cache  cap=%zu hits=%llu misses=%llu evictions=%llu\n", cache.capacity(),
              static_cast<unsigned long long>(cache_stats.hits),
              static_cast<unsigned long long>(cache_stats.misses),
              static_cast<unsigned long long>(cache_stats.evictions));
  // stats() and the attached registry must always tell the same story.
  PTILU_CHECK(registry.counter_value("serve/cache/hits", 0) == cache_stats.hits &&
                  registry.counter_value("serve/cache/misses", 0) == cache_stats.misses &&
                  registry.counter_value("serve/cache/evictions", 0) == cache_stats.evictions,
              "cache stats / metrics registry mismatch");

  const serve::TelemetryStats& tstats = telemetry.stats();
  std::printf("telemetry requests=%llu batches=%llu elections=%llu hist-merges=%llu\n",
              static_cast<unsigned long long>(tstats.requests),
              static_cast<unsigned long long>(tstats.batches),
              static_cast<unsigned long long>(tstats.straggler_elections),
              static_cast<unsigned long long>(tstats.histogram_merges));
  PTILU_CHECK(
      registry.counter_value("serve/telemetry/requests", 0) == tstats.requests &&
          registry.counter_value("serve/telemetry/batches", 0) == tstats.batches &&
          registry.counter_value("serve/telemetry/straggler_elections", 0) ==
              tstats.straggler_elections &&
          registry.counter_value("serve/telemetry/histogram_merges", 0) ==
              tstats.histogram_merges,
      "telemetry stats / metrics registry mismatch");

  // Deterministic payload checksum: everything modeled, nothing wall.
  std::string payload = "ptilu-bench-serve-v1;";
  payload += g0.name + ";";
  payload += std::to_string(n) + ";" + std::to_string(g0.a.nnz()) + ";";
  payload += std::to_string(requests) + ";" + std::to_string(seed) + ";";
  payload += std::to_string(cache_stats.hits) + ";" + std::to_string(cache_stats.misses) +
             ";" + std::to_string(cache_stats.evictions) + ";";
  payload += "telemetry:" + std::to_string(tstats.requests) + ":" +
             std::to_string(tstats.batches) + ":" +
             std::to_string(tstats.straggler_elections) + ":" +
             std::to_string(tstats.histogram_merges) + ";";
  for (const ApplyBench& bench : apply_benches) {
    payload += "apply:" + std::to_string(bench.batch_max) + ":" +
               std::to_string(bench.batches) + ";";
    append_g(payload, "total", bench.modeled.total_s);
    append_g(payload, "p50", bench.exact_p50);
    append_g(payload, "p99", bench.exact_p99);
    append_g(payload, "hp50", bench.hist_p50);
    append_g(payload, "hp99", bench.hist_p99);
    append_g(payload, "sum", bench.checksum);
  }
  for (const StreamBench& bench : stream_benches) {
    payload += "stream:" + std::to_string(bench.streams) + ":" +
               std::to_string(bench.matvecs) + ";";
    append_g(payload, "sum", bench.checksum);
  }
  for (const DistBench& bench : dist_benches) {
    payload += "dist:" + std::to_string(bench.procs) + ":" + std::to_string(bench.k) + ":" +
               std::to_string(bench.batched_messages) + ":" +
               std::to_string(bench.single_messages) + ";";
    append_g(payload, "batched", bench.modeled_batched_s);
    append_g(payload, "single", bench.modeled_single_s);
    append_g(payload, "sum", bench.checksum);
  }
  const std::uint64_t payload_checksum = fnv1a(payload);
  std::printf("payload checksum %016llx\n",
              static_cast<unsigned long long>(payload_checksum));

  if (!serve_report_path.empty()) {
    serve::ServeReportV1 sreport;
    sreport.run = {{"workload", "\"" + g0.name + "\""},
                   {"smoke", smoke ? "true" : "false"},
                   {"quick", quick ? "true" : "false"},
                   {"exact", exact ? "true" : "false"},
                   {"requests", std::to_string(requests)},
                   {"seed", std::to_string(seed)},
                   {"mean_interarrival_s", format_g(traffic.mean_interarrival_s)},
                   {"stream_solves", std::to_string(stream_solves)}};
    sreport.histogram_shards = kHistShards;
    sreport.apply = std::move(apply_sections);
    sreport.has_stream = true;
    sreport.stream = stream_attr;
    sreport.telemetry = tstats;
    serve::write_serve_report_file(sreport, serve_report_path);
    std::printf("wrote %s\n", serve_report_path.c_str());
  }
  if (!serve_trace_path.empty()) {
    event_log.write_chrome_trace_file(serve_trace_path);
    std::printf("wrote %s (%zu lifecycle events)\n", serve_trace_path.c_str(),
                event_log.size());
  }

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    PTILU_CHECK(f != nullptr, "cannot open " << json_path << " for writing");
    std::fprintf(f, "{\n  \"schema\": \"ptilu-bench-serve-v1\",\n");
    std::fprintf(f, "  \"smoke\": %s,\n  \"quick\": %s,\n", smoke ? "true" : "false",
                 quick ? "true" : "false");
    std::fprintf(f, "  \"backend\": \"%s\",\n  \"threads\": %d,\n  \"exact\": %s,\n",
                 sim::backend_name(machine_opts.backend), machine_opts.threads,
                 exact ? "true" : "false");
    std::fprintf(f, "  \"workload\": \"%s\",\n  \"n\": %d,\n  \"nnz\": %lld,\n",
                 g0.name.c_str(), n, static_cast<long long>(g0.a.nnz()));
    std::fprintf(f, "  \"requests\": %d,\n  \"seed\": %llu,\n", requests,
                 static_cast<unsigned long long>(seed));
    std::fprintf(f, "  \"mean_interarrival_s\": %.17g,\n", traffic.mean_interarrival_s);
    std::fprintf(f,
                 "  \"cache\": {\"capacity\": %zu, \"hits\": %llu, \"misses\": %llu, "
                 "\"evictions\": %llu},\n",
                 cache.capacity(), static_cast<unsigned long long>(cache_stats.hits),
                 static_cast<unsigned long long>(cache_stats.misses),
                 static_cast<unsigned long long>(cache_stats.evictions));
    std::fprintf(f,
                 "  \"telemetry\": {\"requests\": %llu, \"batches\": %llu, "
                 "\"straggler_elections\": %llu, \"histogram_merges\": %llu},\n",
                 static_cast<unsigned long long>(tstats.requests),
                 static_cast<unsigned long long>(tstats.batches),
                 static_cast<unsigned long long>(tstats.straggler_elections),
                 static_cast<unsigned long long>(tstats.histogram_merges));
    std::fprintf(f, "  \"apply_benches\": [\n");
    for (std::size_t i = 0; i < apply_benches.size(); ++i) {
      const ApplyBench& bench = apply_benches[i];
      std::fprintf(f,
                   "    {\"name\": \"apply_b%d\", \"batch_max\": %d, \"batches\": %zu,\n",
                   bench.batch_max, bench.batch_max, bench.batches);
      std::fprintf(f,
                   "     \"modeled_total_s\": %.17g, \"modeled_solves_per_s\": %.17g,\n"
                   "     \"modeled_p50_s\": %.17g, \"modeled_p99_s\": %.17g,\n"
                   "     \"hist_p50_s\": %.17g, \"hist_p99_s\": %.17g,\n",
                   bench.modeled.total_s,
                   static_cast<double>(requests) / bench.modeled.total_s,
                   bench.exact_p50, bench.exact_p99, bench.hist_p50, bench.hist_p99);
      if (bench.measured) {
        std::fprintf(f,
                     "     \"wall_total_s\": %.6f, \"wall_solves_per_s\": %.6f,\n"
                     "     \"wall_p50_s\": %.6f, \"wall_p99_s\": %.6f,\n",
                     bench.wall.total_s,
                     static_cast<double>(requests) / bench.wall.total_s,
                     bench.wall_p50, bench.wall_p99);
      }
      std::fprintf(f, "     \"checksum\": %.17g}%s\n", bench.checksum,
                   i + 1 < apply_benches.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"stream_benches\": [\n");
    for (std::size_t i = 0; i < stream_benches.size(); ++i) {
      const StreamBench& bench = stream_benches[i];
      std::fprintf(f, "    {\"streams\": %d, \"solves\": %d, \"matvecs\": %lld,\n",
                   bench.streams, bench.solves, bench.matvecs);
      if (bench.measured) {
        std::fprintf(f, "     \"wall_total_s\": %.6f, \"wall_solves_per_s\": %.6f,\n",
                     bench.wall_total_s,
                     static_cast<double>(bench.solves) / bench.wall_total_s);
      }
      std::fprintf(f, "     \"checksum\": %.17g}%s\n", bench.checksum,
                   i + 1 < stream_benches.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"dist_benches\": [\n");
    for (std::size_t i = 0; i < dist_benches.size(); ++i) {
      const DistBench& bench = dist_benches[i];
      std::fprintf(f, "    {\"procs\": %d, \"k\": %d,\n", bench.procs, bench.k);
      std::fprintf(f,
                   "     \"modeled_batched_s\": %.17g, \"modeled_single_s\": %.17g, "
                   "\"modeled_speedup\": %.17g,\n",
                   bench.modeled_batched_s, bench.modeled_single_s,
                   bench.modeled_single_s / bench.modeled_batched_s);
      std::fprintf(f, "     \"batched_messages\": %llu, \"single_messages\": %llu,\n",
                   static_cast<unsigned long long>(bench.batched_messages),
                   static_cast<unsigned long long>(bench.single_messages));
      std::fprintf(f, "     \"checksum\": %.17g}%s\n", bench.checksum,
                   i + 1 < dist_benches.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"payload_checksum\": \"%016llx\"\n}\n",
                 static_cast<unsigned long long>(payload_checksum));
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
