// Ablation: Luby augmentation rounds (§4.1). The paper performs "only five
// such augmentation steps" arguing the majority of the independent vertices
// are found early. This harness sweeps the round count and reports the
// factorization time and level count (more rounds => larger sets => fewer
// levels, but each level costs more MIS time), plus the standalone MIS size
// on the initial interface graph.
#include <iostream>

#include "bench_common.hpp"
#include "ptilu/dist/mis_dist.hpp"
#include "ptilu/sim/machine.hpp"
#include "ptilu/support/timer.hpp"

namespace ptilu::bench {
namespace {

void run_matrix(const TestMatrix& matrix, int nranks, const FactorConfig& config,
                const std::vector<int>& rounds_list, Observability& obs) {
  print_header("Ablation: MIS augmentation rounds", matrix);
  std::cout << "configuration " << config_label(config, 2) << ", p=" << nranks << "\n";
  const DistCsr dist = distribute(matrix.a, nranks);

  Table table({"rounds", "factor time", "levels q", "supersteps"});
  for (const int rounds : rounds_list) {
    sim::Machine machine(nranks);
    const PilutResult result =
        pilut_factor(machine, dist,
                     {.m = config.m,
                      .tau = config.tau,
                      .cap_k = 2,
                      .mis_rounds = rounds,
                      .pivot_rel = 1e-12});
    table.row()
        .cell(static_cast<long long>(rounds))
        .cell(result.stats.time_total, 4)
        .cell(static_cast<long long>(result.stats.levels))
        .cell(static_cast<long long>(result.stats.supersteps));
  }
  table.print(std::cout);

  // Observed rerun of the middle round count (--trace/--report flags).
  if (obs.enabled()) {
    const int rounds = rounds_list[rounds_list.size() / 2];
    sim::Machine machine(nranks, obs.machine_options());
    obs.attach(machine);
    pilut_factor(machine, dist,
                 {.m = config.m,
                  .tau = config.tau,
                  .cap_k = 2,
                  .mis_rounds = rounds,
                  .pivot_rel = 1e-12});
    obs.report(machine,
               matrix.name + " rounds=" + std::to_string(rounds) + " p=" +
                   std::to_string(nranks),
               {{"harness", "\"ablation_mis\""},
                {"matrix", "\"" + matrix.name + "\""},
                {"procs", std::to_string(nranks)}});
  }
}

}  // namespace
}  // namespace ptilu::bench

int main(int argc, char** argv) {
  using namespace ptilu;
  using namespace ptilu::bench;
  const Cli cli(argc, argv);
  const Scale scale = scale_from_cli(cli);
  const int nranks = static_cast<int>(cli.get_int("procs", 64));
  const idx m = static_cast<idx>(cli.get_int("m", 10));
  const real tau = cli.get_double("tau", 1e-4);
  const auto rounds_list = cli.get_int_list("rounds", {1, 2, 3, 5, 8, 16});
  Observability obs(cli, "ablation_mis");
  cli.check_all_consumed();

  WallTimer timer;
  run_matrix(build_g0(scale), nranks, {m, tau}, rounds_list, obs);
  run_matrix(build_torso(scale), nranks, {m, tau}, rounds_list, obs);
  std::cout << "\n[ablation_mis wall time: " << format_fixed(timer.seconds(), 1) << "s]\n";
  return 0;
}
