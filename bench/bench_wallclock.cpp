// Wall-clock performance harness for the hot paths this library actually
// spends host time in: serial ILUT, the simulated-parallel PILUT driver,
// and a preconditioned GMRES solve. Unlike the table harnesses (which
// report *modeled* Cray T3D time), this one measures real elapsed seconds,
// so it is the regression gate for host-side optimizations that must leave
// modeled results bit-identical.
//
// Each bench runs `--reps` times and reports the median (plus min/max and
// the raw samples) in a machine-readable JSON file:
//
//   {
//     "schema": "ptilu-bench-wallclock-v4",
//     "quick": true,
//     "repetitions": 5,
//     "backend": "sequential",
//     "threads": 0,
//     "variant": "scalar",
//     "benches": [
//       {"name": "pilut_g0_p16", "workload": "G0", "kind": "factorization",
//        "n": 9216, "nnz": 45824, "reps_s": [...],
//        "median_s": 0.42, "min_s": 0.41, "max_s": 0.44,
//        "checksum": 1.234e+05},
//       ...
//     ]
//   }
//
// The checksum folds the produced factors (or solve result) into a double
// so the timed work cannot be dead-code-eliminated — and so two builds can
// be cross-checked for identical numerical output before their medians are
// compared. scripts/check_bench_json.py validates the schema and computes
// per-bench speedups between two such files; since v2 records the execution
// backend, the checker refuses to compare wall-clock across different
// backends unless --allow-backend-mismatch is passed (that *is* the
// interesting comparison when measuring the threaded backend's speedup —
// checksums still must match, since both backends are bit-identical).
//
// With --report/--report-dir each simulated-parallel bench additionally
// runs once, untimed, on a fresh metrics-enabled machine, and each such
// bench carries "report_checksum", the FNV-1a 64 hash of the metrics
// report's machine-derived payload. Equal checksums mean two runs not only
// computed the same factors but distributed modeled time and traffic
// across phases identically — check_bench_json.py flags the mismatch case
// ("same result, different critical path") during compares.
//
// --variant=blocked switches the serial factorization benches and the
// GMRES preconditioner application to the supernodal/blocked execution
// path (ilut_blocked + the register-blocked panel trisolves); the
// simulated-parallel benches always run the scalar kernels. The output
// schema is ptilu-bench-wallclock-v4, which records "variant" at the top
// level — check_bench_json.py refuses to compare scalar against blocked
// runs unless --allow-variant-mismatch is passed (that is the interesting
// comparison when measuring the blocked path's speedup; the checksums
// legitimately differ because blocked dropping is block-wise).
//
// Flags: --quick (CI-sized problems, fewer reps), --smoke (tiny problems,
// one rep — schema smoke test only), --reps=N, --json=PATH,
// --variant=<scalar|blocked>, --slack=S and --panel=W (blocked
// amalgamation knobs), --report / --report-dir=DIR (see above),
// --backend=<sequential|threads> and --threads=N (default from
// PTILU_BACKEND / PTILU_THREADS; applies to the simulated-parallel benches).
#include <algorithm>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "ptilu/ilu/ilut.hpp"
#include "ptilu/ilu/ilut_blocked.hpp"
#include "ptilu/krylov/gmres.hpp"
#include "ptilu/krylov/preconditioner.hpp"
#include "ptilu/support/table.hpp"
#include "ptilu/support/timer.hpp"

namespace {

using namespace ptilu;
using bench::TestMatrix;

struct BenchResult {
  std::string name;
  std::string workload;
  std::string kind;  // "factorization" or "solve"
  idx n = 0;
  nnz_t nnz = 0;
  std::vector<double> reps_s;
  double checksum = 0.0;
  bool has_report = false;
  std::uint64_t report_checksum = 0;

  double median() const {
    std::vector<double> sorted = reps_s;
    std::sort(sorted.begin(), sorted.end());
    const std::size_t mid = sorted.size() / 2;
    return sorted.size() % 2 == 1 ? sorted[mid]
                                  : 0.5 * (sorted[mid - 1] + sorted[mid]);
  }
  double min() const { return *std::min_element(reps_s.begin(), reps_s.end()); }
  double max() const { return *std::max_element(reps_s.begin(), reps_s.end()); }
};

/// Fold a factor pair into one double. Deterministic builds produce the
/// same value, so mismatching checksums between two compared runs mean the
/// builds are not computing the same factorization.
double factors_checksum(const IluFactors& factors) {
  double sum = 0.0;
  for (const real v : factors.l.values) sum += v;
  for (const real v : factors.u.values) sum += v;
  return sum + static_cast<double>(factors.l.col_idx.size()) +
         static_cast<double>(factors.u.col_idx.size());
}

/// Blocked-factor analogue: fold every stored tile value (padding zeros
/// contribute nothing) plus the structural nonzero count. Not comparable
/// to the scalar checksum — block-wise dropping keeps different entries —
/// which is exactly why compares across variants must be opted into.
double factors_checksum(const BlockedFactors& factors) {
  double sum = 0.0;
  for (idx p = 0; p < factors.n_panels(); ++p) {
    for (const real v : factors.lvals[p]) sum += v;
    for (const real v : factors.uvals[p]) sum += v;
    for (const real v : factors.diag[p]) sum += v;
  }
  return sum + static_cast<double>(factors.nnz());
}

/// Time `body` (which returns a checksum) `reps` times.
BenchResult run_bench(const std::string& name, const TestMatrix& matrix,
                      const std::string& kind, int reps,
                      const std::function<double()>& body) {
  BenchResult result;
  result.name = name;
  result.workload = matrix.name;
  result.kind = kind;
  result.n = matrix.a.n_rows;
  result.nnz = static_cast<nnz_t>(matrix.a.values.size());
  for (int rep = 0; rep < reps; ++rep) {
    WallTimer timer;
    result.checksum = body();
    result.reps_s.push_back(timer.seconds());
  }
  std::printf("%-18s %-6s %-13s n=%-7d median %8.4f s  (min %.4f, max %.4f)\n",
              result.name.c_str(), result.workload.c_str(), result.kind.c_str(),
              result.n, result.median(), result.min(), result.max());
  std::fflush(stdout);
  return result;
}

void write_json(const std::string& path, bool quick, int reps,
                const sim::Machine::Options& machine_opts, const std::string& variant,
                const BlockedIlutOptions& blocked_opts,
                const std::vector<BenchResult>& results) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  PTILU_CHECK(f != nullptr, "cannot open " << path << " for writing");
  std::fprintf(f, "{\n  \"schema\": \"ptilu-bench-wallclock-v4\",\n");
  std::fprintf(f, "  \"quick\": %s,\n  \"repetitions\": %d,\n", quick ? "true" : "false",
               reps);
  std::fprintf(f, "  \"backend\": \"%s\",\n  \"threads\": %d,\n  \"variant\": \"%s\",\n",
               sim::backend_name(machine_opts.backend), machine_opts.threads,
               variant.c_str());
  if (variant == "blocked") {
    // Record the amalgamation knobs so the file is reproducible as-is.
    std::fprintf(f, "  \"panel\": %d,\n  \"slack\": %.17g,\n",
                 blocked_opts.panels.max_panel, blocked_opts.panels.slack);
  }
  std::fprintf(f, "  \"benches\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const BenchResult& r = results[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"workload\": \"%s\", \"kind\": \"%s\", "
                 "\"n\": %d, \"nnz\": %lld,\n     \"reps_s\": [",
                 r.name.c_str(), r.workload.c_str(), r.kind.c_str(), r.n,
                 static_cast<long long>(r.nnz));
    for (std::size_t k = 0; k < r.reps_s.size(); ++k) {
      std::fprintf(f, "%s%.6f", k == 0 ? "" : ", ", r.reps_s[k]);
    }
    std::fprintf(f, "],\n     \"median_s\": %.6f, \"min_s\": %.6f, \"max_s\": %.6f, ",
                 r.median(), r.min(), r.max());
    std::fprintf(f, "\"checksum\": %.17g", r.checksum);
    if (r.has_report) {
      std::fprintf(f, ", \"report_checksum\": \"%016llx\"",
                   static_cast<unsigned long long>(r.report_checksum));
    }
    std::fprintf(f, "}%s\n", i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const bool quick = cli.get_bool("quick", false);
  const bool smoke = cli.get_bool("smoke", false);
  bench::Scale scale;  // default preset
  if (smoke) {
    scale = {48, 48, 8, 8, 12};
  } else if (quick) {
    scale = {96, 96, 16, 16, 24};
  }
  const int reps =
      static_cast<int>(cli.get_int("reps", smoke ? 1 : (quick ? 3 : 5)));
  const std::string json_path = cli.get_string("json", "");
  const std::string variant = cli.get_choice("variant", "scalar", {"scalar", "blocked"});
  const bool blocked = variant == "blocked";
  const BlockedIlutOptions blocked_opts{
      .base = {.m = 10, .tau = 1e-4, .pivot_rel = 1e-12},
      // Bench defaults are tuned on these operators (see the committed
      // BENCH_wallclock.json); the library's PanelOptions defaults stay
      // conservative.
      .panels = {.max_panel = static_cast<int>(cli.get_int("panel", 8)),
                 .slack = cli.get_double("slack", 3.0)}};
  const sim::Machine::Options machine_opts = bench::machine_options_from_cli(cli);
  bench::ReportWriter reporter(cli, "wallclock");
  cli.check_all_consumed();
  PTILU_CHECK(reps >= 1, "--reps must be >= 1");

  // One extra *untimed* pass of a simulated-parallel bench on a fresh
  // metrics-enabled machine: prints the critical-path breakdown, optionally
  // writes the run report, and stamps report_checksum into the bench entry.
  const auto observe = [&](BenchResult& bench_result, int nranks, const DistCsr& dist,
                           const PilutOptions& opts) {
    if (!reporter.enabled()) return;
    sim::Machine::Options observed_opts = machine_opts;
    observed_opts.metrics = true;
    sim::Machine machine(nranks, observed_opts);
    pilut_factor(machine, dist, opts);
    bench_result.has_report = true;
    bench_result.report_checksum = machine.metrics()->payload_checksum(machine);
    reporter.report(machine, bench_result.name,
                    {{"harness", "\"bench_wallclock\""},
                     {"procs", std::to_string(nranks)}});
  };

  const TestMatrix g0 = bench::build_g0(scale);
  const TestMatrix torso = bench::build_torso(scale);
  const IlutOptions serial_opts{.m = 10, .tau = 1e-4, .pivot_rel = 1e-12};
  const PilutOptions pilut_opts{.m = 10, .tau = 1e-4, .pivot_rel = 1e-12};

  std::printf("bench_wallclock: reps=%d scale=%s backend=%s variant=%s\n", reps,
              smoke ? "smoke" : (quick ? "quick" : "default"),
              sim::backend_name(machine_opts.backend), variant.c_str());
  std::vector<BenchResult> results;

  // --- Serial ILUT factorization (scalar or supernodal/blocked kernels).
  for (const TestMatrix* matrix : {&g0, &torso}) {
    results.push_back(run_bench("ilut_" + matrix->name, *matrix, "factorization", reps,
                                [&]() {
                                  if (blocked) {
                                    return factors_checksum(
                                        ilut_blocked(matrix->a, blocked_opts));
                                  }
                                  return factors_checksum(ilut(matrix->a, serial_opts));
                                }));
  }

  // --- Simulated-parallel PILUT. The partitioning/distribution is setup,
  // not hot path, so it stays outside the timed region.
  const int p_small = smoke ? 4 : 16;
  for (const TestMatrix* matrix : {&g0, &torso}) {
    const DistCsr dist = bench::distribute(matrix->a, p_small);
    sim::Machine machine(p_small, machine_opts);
    results.push_back(run_bench(
        "pilut_" + matrix->name + "_p" + std::to_string(p_small), *matrix,
        "factorization", reps, [&]() {
          const PilutResult result = pilut_factor(machine, dist, pilut_opts);
          return factors_checksum(result.factors);
        }));
    observe(results.back(), p_small, dist, pilut_opts);
  }
  if (!smoke) {
    const int p_large = 64;
    const DistCsr dist = bench::distribute(g0.a, p_large);
    sim::Machine machine(p_large, machine_opts);
    results.push_back(run_bench("pilut_G0_p" + std::to_string(p_large), g0,
                                "factorization", reps, [&]() {
                                  const PilutResult result =
                                      pilut_factor(machine, dist, pilut_opts);
                                  return factors_checksum(result.factors);
                                }));
    observe(results.back(), p_large, dist, pilut_opts);
  }

  // --- Preconditioned GMRES(20) solve (host-side triangular solves and
  // matvecs; the factorization is setup here). The blocked variant applies
  // the preconditioner through the register-blocked panel trisolves.
  {
    std::unique_ptr<Preconditioner> precond;
    if (blocked) {
      precond = std::make_unique<BlockedIluPreconditioner>(ilut_blocked(g0.a, blocked_opts));
    } else {
      precond = std::make_unique<IluPreconditioner>(ilut(g0.a, serial_opts));
    }
    const RealVec b = workloads::rhs_all_ones_solution(g0.a);
    results.push_back(run_bench("gmres_G0", g0, "solve", reps, [&]() {
      RealVec x(g0.a.n_rows, 0.0);
      const GmresResult solve = gmres(g0.a, *precond, b, x, {.restart = 20});
      return solve.final_residual + static_cast<double>(solve.matvecs);
    }));
  }

  if (!json_path.empty()) {
    write_json(json_path, quick || smoke, reps, machine_opts, variant, blocked_opts,
               results);
  }
  return 0;
}
