// google-benchmark micro-kernels for the library's hot paths: SpMV, serial
// triangular solves (scalar and blocked-panel), the ILUT row kernel and
// the supernodal/blocked factorization (whole-matrix factorizations at
// several sizes), the register-tile AXPY at each fixed width,
// selection/dropping, Luby MIS rounds, and partitioning.
#include <benchmark/benchmark.h>

#include "ptilu/graph/graph.hpp"
#include "ptilu/graph/mis.hpp"
#include "ptilu/ilu/block_kernels.hpp"
#include "ptilu/ilu/factors.hpp"
#include "ptilu/ilu/ilut.hpp"
#include "ptilu/ilu/ilut_blocked.hpp"
#include "ptilu/ilu/trisolve.hpp"
#include "ptilu/krylov/gmres.hpp"
#include "ptilu/part/partition.hpp"
#include "ptilu/sparse/spmv.hpp"
#include "ptilu/support/rng.hpp"
#include "ptilu/workloads/grids.hpp"
#include "ptilu/workloads/rhs.hpp"

namespace ptilu {
namespace {

Csr grid_matrix(idx side) { return workloads::convection_diffusion_2d(side, side, 8.0, 4.0); }

void BM_Spmv(benchmark::State& state) {
  const Csr a = grid_matrix(static_cast<idx>(state.range(0)));
  const RealVec x = workloads::random_vector(a.n_rows, 1);
  RealVec y(a.n_rows);
  for (auto _ : state) {
    spmv(a, x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * a.nnz());
}
BENCHMARK(BM_Spmv)->Arg(64)->Arg(128)->Arg(256);

void BM_IlutFactor(benchmark::State& state) {
  const Csr a = grid_matrix(static_cast<idx>(state.range(0)));
  const idx m = static_cast<idx>(state.range(1));
  for (auto _ : state) {
    const IluFactors f = ilut(a, {.m = m, .tau = 1e-4});
    benchmark::DoNotOptimize(f.l.nnz());
  }
  state.SetItemsProcessed(state.iterations() * a.n_rows);
}
BENCHMARK(BM_IlutFactor)->Args({64, 5})->Args({64, 20})->Args({128, 10});

void BM_IlutBlockedFactor(benchmark::State& state) {
  const Csr a = grid_matrix(static_cast<idx>(state.range(0)));
  const BlockedIlutOptions opts{
      .base = {.m = static_cast<idx>(state.range(1)), .tau = 1e-4},
      .panels = {.max_panel = static_cast<int>(state.range(2)), .slack = 1.5}};
  for (auto _ : state) {
    const BlockedFactors f = ilut_blocked(a, opts);
    benchmark::DoNotOptimize(f.nnz());
  }
  state.SetItemsProcessed(state.iterations() * a.n_rows);
}
BENCHMARK(BM_IlutBlockedFactor)
    ->Args({64, 10, 4})
    ->Args({128, 10, 4})
    ->Args({128, 10, 8});

// The register-tile AXPY at each fixed width, against a working set that
// fits in L1: this is the inner loop of both the blocked factorization
// update and the panel trisolves.
void BM_TileAxpy(benchmark::State& state) {
  const int nb = static_cast<int>(state.range(0));
  const int cols = 512;
  RealVec w(static_cast<std::size_t>(cols) * nb, 1.0);
  RealVec m(static_cast<std::size_t>(nb), 0.5);
  for (auto _ : state) {
    for (int c = 0; c < cols; ++c) {
      tile_axpy_any(nb, w.data() + static_cast<std::size_t>(c) * nb, m.data(), 1e-3);
    }
    benchmark::DoNotOptimize(w.data());
  }
  state.SetItemsProcessed(state.iterations() * cols * nb);
}
BENCHMARK(BM_TileAxpy)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_Ilu0Factor(benchmark::State& state) {
  const Csr a = grid_matrix(static_cast<idx>(state.range(0)));
  for (auto _ : state) {
    const IluFactors f = ilu0(a);
    benchmark::DoNotOptimize(f.l.nnz());
  }
}
BENCHMARK(BM_Ilu0Factor)->Arg(64)->Arg(128);

void BM_TriangularSolve(benchmark::State& state) {
  const Csr a = grid_matrix(static_cast<idx>(state.range(0)));
  const IluFactors f = ilut(a, {.m = 10, .tau = 1e-4});
  const RealVec b = workloads::random_vector(a.n_rows, 2);
  RealVec x(a.n_rows);
  for (auto _ : state) {
    ilu_apply(f, b, x);
    benchmark::DoNotOptimize(x.data());
  }
  state.SetItemsProcessed(state.iterations() * (f.l.nnz() + f.u.nnz()));
}
BENCHMARK(BM_TriangularSolve)->Arg(64)->Arg(128)->Arg(256);

void BM_TriangularSolveBlocked(benchmark::State& state) {
  const Csr a = grid_matrix(static_cast<idx>(state.range(0)));
  const BlockedFactors f = ilut_blocked(a, {.base = {.m = 10, .tau = 1e-4}});
  const RealVec b = workloads::random_vector(a.n_rows, 2);
  RealVec x(a.n_rows);
  for (auto _ : state) {
    ilu_apply(f, b, x);
    benchmark::DoNotOptimize(x.data());
  }
  state.SetItemsProcessed(state.iterations() * f.nnz());
}
BENCHMARK(BM_TriangularSolveBlocked)->Arg(64)->Arg(128)->Arg(256);

void BM_SelectLargest(benchmark::State& state) {
  Rng rng(3);
  SparseRow prototype;
  for (idx c = 0; c < state.range(0); ++c) prototype.push(c, rng.uniform(-1, 1));
  for (auto _ : state) {
    SparseRow row = prototype;
    select_largest(row, 10, 0.01, 0);
    benchmark::DoNotOptimize(row.cols.data());
  }
}
BENCHMARK(BM_SelectLargest)->Arg(32)->Arg(256)->Arg(1024);

void BM_LubyMis(benchmark::State& state) {
  const Graph g = graph_from_pattern(grid_matrix(static_cast<idx>(state.range(0))));
  for (auto _ : state) {
    const IdxVec set = luby_mis(g, {.seed = 5, .rounds = 5});
    benchmark::DoNotOptimize(set.size());
  }
  state.SetItemsProcessed(state.iterations() * g.n);
}
BENCHMARK(BM_LubyMis)->Arg(64)->Arg(128);

void BM_PartitionKway(benchmark::State& state) {
  const Graph g = graph_from_pattern(grid_matrix(128));
  const idx parts = static_cast<idx>(state.range(0));
  for (auto _ : state) {
    const Partition p = partition_kway(g, parts);
    benchmark::DoNotOptimize(p.part.data());
  }
}
BENCHMARK(BM_PartitionKway)->Arg(4)->Arg(16)->Arg(64);

void BM_GmresCycle(benchmark::State& state) {
  // One GMRES(20) cycle (20 matvecs + MGS) with a Jacobi preconditioner.
  const Csr a = grid_matrix(64);
  const RealVec b = workloads::rhs_all_ones_solution(a);
  const JacobiPreconditioner precond(a);
  for (auto _ : state) {
    RealVec x(a.n_rows, 0.0);
    const GmresResult r =
        gmres(a, precond, b, x, {.restart = 20, .max_matvecs = 20, .rtol = 1e-30});
    benchmark::DoNotOptimize(r.matvecs);
  }
}
BENCHMARK(BM_GmresCycle);

}  // namespace
}  // namespace ptilu

BENCHMARK_MAIN();
