// Ablation: partition quality (§3, §6). The paper credits its multilevel
// k-way partitioner with keeping the interface-node count — and hence the
// expensive distributed phase — small. This harness compares multilevel
// k-way against random and contiguous-block partitions: edge cut, interface
// fraction, and the resulting PILUT factorization time.
#include <iostream>

#include "bench_common.hpp"
#include "ptilu/sim/machine.hpp"
#include "ptilu/support/timer.hpp"

namespace ptilu::bench {
namespace {

void run_matrix(const TestMatrix& matrix, int nranks, const FactorConfig& config,
                Observability& obs) {
  print_header("Ablation: partition quality", matrix);
  std::cout << "configuration " << config_label(config, 2) << ", p=" << nranks << "\n";
  const Graph g = graph_from_pattern(matrix.a);

  Table table({"partitioner", "edge cut", "imbalance", "interface %", "factor time",
               "levels q"});
  struct Entry {
    std::string name;
    Partition partition;
  };
  std::vector<Entry> entries;
  entries.push_back({"multilevel k-way", partition_kway(g, nranks)});
  entries.push_back({"block (contiguous)", partition_block(g, nranks)});
  entries.push_back({"random", partition_random(g, nranks, 1)});

  for (const auto& [name, partition] : entries) {
    const DistCsr dist = DistCsr::create(matrix.a, partition);
    sim::Machine machine(nranks);
    const PilutResult result = pilut_factor(
        machine, dist,
        {.m = config.m, .tau = config.tau, .cap_k = 2, .pivot_rel = 1e-12});
    table.row()
        .cell(name)
        .cell(static_cast<long long>(edge_cut(g, partition)))
        .cell(imbalance(g, partition), 3)
        .cell(100.0 * dist.interface_count_total() / matrix.a.n_rows, 1)
        .cell(result.stats.time_total, 4)
        .cell(static_cast<long long>(result.stats.levels));
  }
  table.print(std::cout);

  // Observed rerun on the multilevel k-way partition (--trace/--report).
  if (obs.enabled()) {
    const DistCsr dist = DistCsr::create(matrix.a, entries.front().partition);
    sim::Machine machine(nranks, obs.machine_options());
    obs.attach(machine);
    pilut_factor(machine, dist,
                 {.m = config.m, .tau = config.tau, .cap_k = 2, .pivot_rel = 1e-12});
    obs.report(machine,
               matrix.name + " multilevel p=" + std::to_string(nranks),
               {{"harness", "\"ablation_partition\""},
                {"matrix", "\"" + matrix.name + "\""},
                {"procs", std::to_string(nranks)}});
  }
}

}  // namespace
}  // namespace ptilu::bench

int main(int argc, char** argv) {
  using namespace ptilu;
  using namespace ptilu::bench;
  const Cli cli(argc, argv);
  const Scale scale = scale_from_cli(cli);
  const int nranks = static_cast<int>(cli.get_int("procs", 32));
  const idx m = static_cast<idx>(cli.get_int("m", 10));
  const real tau = cli.get_double("tau", 1e-4);
  Observability obs(cli, "ablation_partition");
  cli.check_all_consumed();

  WallTimer timer;
  run_matrix(build_g0(scale), nranks, {m, tau}, obs);
  // Random partitions of the TORSO analogue put nearly every node on the
  // interface, which is exactly the point of the comparison.
  run_matrix(build_torso(scale), nranks, {m, tau}, obs);
  std::cout << "\n[ablation_partition wall time: " << format_fixed(timer.seconds(), 1)
            << "s]\n";
  return 0;
}
