// Ablation: interface-factorization strategy. Compares the paper's
// independent-set formulation (pilut_factor), the §7 nested
// partition-based formulation (pilut_factor_nested), and the static
// coloring-based parallel ILU(0) baseline (pilu0_factor) on factorization
// time, synchronization levels, preconditioner application time, and
// GMRES iteration counts.
#include <iostream>

#include "bench_common.hpp"
#include "ptilu/krylov/gmres.hpp"
#include "ptilu/pilut/pilu0.hpp"
#include "ptilu/pilut/pilut_nested.hpp"
#include "ptilu/pilut/trisolve_dist.hpp"
#include "ptilu/sim/machine.hpp"
#include "ptilu/support/timer.hpp"

namespace ptilu::bench {
namespace {

void run_matrix(const TestMatrix& matrix, int nranks, const FactorConfig& config,
                Observability& obs) {
  print_header("Ablation: interface factorization strategy", matrix);
  std::cout << "configuration m=" << config.m << " t=" << format_sci(config.tau, 0)
            << " (k=2 caps where applicable), p=" << nranks << "\n";
  const DistCsr dist = distribute(matrix.a, nranks);
  const RealVec b = workloads::rhs_all_ones_solution(matrix.a);

  Table table({"strategy", "factor time", "levels", "apply time", "GMRES(50) NMV"});
  const auto report = [&](const std::string& name, const PilutResult& result,
                          sim::Machine& machine) {
    const DistTriangularSolver solver(result.factors, result.schedule);
    machine.reset();
    RealVec x(matrix.a.n_rows);
    solver.apply(machine, b, x);
    const double apply_time = machine.modeled_time();

    RealVec solution(matrix.a.n_rows, 0.0);
    const GmresResult gmres_result =
        gmres(matrix.a, IluPreconditioner(result.factors, result.schedule.newnum), b,
              solution, {.restart = 50, .max_matvecs = 20000});
    table.row()
        .cell(name)
        .cell(result.stats.time_total, 4)
        .cell(static_cast<long long>(result.stats.levels))
        .cell(format_sci(apply_time, 3))
        .cell(static_cast<long long>(gmres_result.converged ? gmres_result.matvecs : -1));
  };

  sim::Machine machine(nranks);
  report("PILUT (indep. sets)",
         pilut_factor(machine, dist,
                      {.m = config.m, .tau = config.tau, .pivot_rel = 1e-12}),
         machine);
  report("PILUT* (indep. sets, k=2)",
         pilut_factor(machine, dist,
                      {.m = config.m, .tau = config.tau, .cap_k = 2, .pivot_rel = 1e-12}),
         machine);
  report("PILUT* nested (partitioned)",
         pilut_factor_nested(
             machine, dist,
             {.m = config.m, .tau = config.tau, .cap_k = 2, .pivot_rel = 1e-12}),
         machine);
  report("PILU(0) (coloring)", pilu0_factor(machine, dist, {.pivot_rel = 1e-12}),
         machine);
  table.print(std::cout);

  // Observed rerun of the paper's default strategy (--trace/--report).
  if (obs.enabled()) {
    sim::Machine observed(nranks, obs.machine_options());
    obs.attach(observed);
    pilut_factor(observed, dist,
                 {.m = config.m, .tau = config.tau, .cap_k = 2, .pivot_rel = 1e-12});
    obs.report(observed,
               matrix.name + " pilut_star p=" + std::to_string(nranks),
               {{"harness", "\"ablation_strategy\""},
                {"matrix", "\"" + matrix.name + "\""},
                {"procs", std::to_string(nranks)}});
  }
}

}  // namespace
}  // namespace ptilu::bench

int main(int argc, char** argv) {
  using namespace ptilu;
  using namespace ptilu::bench;
  const Cli cli(argc, argv);
  const Scale scale = scale_from_cli(cli);
  const int nranks = static_cast<int>(cli.get_int("procs", 64));
  const idx m = static_cast<idx>(cli.get_int("m", 10));
  const real tau = cli.get_double("tau", 1e-4);
  Observability obs(cli, "ablation_strategy");
  cli.check_all_consumed();

  WallTimer timer;
  run_matrix(build_g0(scale), nranks, {m, tau}, obs);
  run_matrix(build_torso(scale), nranks, {m, tau}, obs);
  std::cout << "\n[ablation_strategy wall time: " << format_fixed(timer.seconds(), 1)
            << "s]\n";
  return 0;
}
