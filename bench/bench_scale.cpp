// Scaling-study harness: modeled strong/weak scaling of the PILUT
// pipeline (factorization, triangular solve, GMRES) at processor counts
// far beyond the table harnesses — p up to 4096 ranks and problems up to
// 10M unknowns, simulated on one host.
//
// At these sizes neither the global matrix nor the real numerics fit the
// budget of a sweep, so this harness runs a *modeled skeleton*: each rank
// streams its own row slab of the operator (workloads/stream.hpp — never
// materializing the global matrix), keeps only the slab's row/nnz totals,
// and then drives the real sim::Machine through the pipeline's
// communication structure — halo exchanges with strip neighbors,
// MIS-style interface rounds, level-scheduled sweeps, dot-product
// collectives — with per-rank flop/byte charges derived from the streamed
// slab statistics. The messages are real Machine messages, so the sparse
// neighbor-routing substrate (DESIGN.md §12) is exercised end to end: the
// run allocates O(p + messages), never O(p^2), which is what makes the
// p=4096 / n=10M point feasible in host RAM. The modeled numbers are
// skeleton estimates for curve shape, not the table harnesses' full
// simulated factorization — see docs/SCALING.md for how to read them.
//
// Output: a table per sweep plus a machine-readable JSON file
// ("ptilu-bench-scale-v1", validated by scripts/check_bench_json.py) with
// one point per (mode, p): modeled per-phase seconds, superstep/message/
// byte totals, and speedup/efficiency relative to the sweep's first point.
//
// Flags:
//   --smoke                tiny CI-sized sweep (p up to 64, small n)
//   --procs=64,256,...     rank counts (default 64,256,1024,4096)
//   --n=N                  strong-scaling unknowns target (default 10M)
//   --workload=g0|torso    operator family (default g0)
//   --gmres-iters=K        modeled GMRES iterations (default 10)
//   --json=PATH            write the BENCH_scale.json artifact
//   --report-dir=DIR       write a ptilu-report-v2 metrics report for the
//                          largest strong-scaling point (check_report.py)
//   --exact                cross-validate streamed slabs against the dense
//                          generators at a small size before sweeping
//   --backend=..., --threads=N   execution backend (PTILU_BACKEND/THREADS)
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "ptilu/workloads/stream.hpp"

namespace {

using namespace ptilu;

constexpr const char* kUsage =
    "bench_scale: modeled strong/weak scaling sweep (see docs/SCALING.md)\n"
    "  --smoke              tiny CI-sized sweep\n"
    "  --procs=LIST         rank counts, ascending (default 64,256,1024,4096)\n"
    "  --n=N                strong-scaling unknowns target (default 10000000)\n"
    "  --workload=g0|torso  operator family (default g0)\n"
    "  --gmres-iters=K      modeled GMRES iterations (default 10)\n"
    "  --json=PATH          write BENCH_scale.json (ptilu-bench-scale-v1)\n"
    "  --report-dir=DIR     write ptilu-report-v2 for the largest strong point\n"
    "  --exact              cross-validate streamed slabs vs dense generators\n"
    "  --backend=<sequential|threads>, --threads=N\n";

/// Everything the modeled skeleton needs to know about one rank's slab:
/// totals only — the slab itself is discarded right after streaming.
struct SlabStats {
  idx rows = 0;
  nnz_t nnz = 0;
};

/// One operator configuration: a strip (contiguous global rows) per rank.
/// `halo` is the number of unknowns coupled across a strip boundary (one
/// grid row / voxel plane), which sizes every neighbor message.
struct Problem {
  std::string workload;
  idx n = 0;
  idx halo = 0;
  std::vector<SlabStats> slabs;  // [rank]
  nnz_t nnz_total = 0;
  idx rows_max = 0;
};

/// Contiguous row split: first `n % p` ranks take one extra row.
std::pair<idx, idx> strip_of(idx n, int p, int r) {
  const idx base = n / p;
  const idx extra = n % p;
  const idx begin = static_cast<idx>(r) * base + std::min<idx>(r, extra);
  return {begin, begin + base + (r < extra ? 1 : 0)};
}

/// Stream every rank's slab of the operator, keeping only its totals.
/// Peak memory is one slab — this is the loop that lets n=10M run here.
Problem build_problem(const std::string& workload, idx target_n, int p) {
  Problem prob;
  prob.workload = workload;
  if (workload == "torso") {
    // Voxel box with z chosen to hit the target size; strip = voxel planes.
    const idx nx = std::max<idx>(4, static_cast<idx>(std::cbrt(static_cast<double>(target_n))));
    const idx ny = nx;
    const idx nz = std::max<idx>(4, (target_n + nx * ny - 1) / (nx * ny));
    workloads::TorsoOptions opts;
    opts.nx = nx;
    opts.ny = ny;
    opts.nz = nz;
    prob.n = nx * ny * nz;
    prob.halo = nx * ny;
    prob.slabs.resize(p);
    for (int r = 0; r < p; ++r) {
      const auto [begin, end] = strip_of(prob.n, p, r);
      const Csr slab = workloads::torso_fv_3d_rows(opts, begin, end);
      prob.slabs[r] = {slab.n_rows, slab.nnz()};
    }
  } else {
    // Square convection-diffusion grid; strip = grid rows of width nx.
    const idx nx = std::max<idx>(4, static_cast<idx>(std::sqrt(static_cast<double>(target_n))));
    const idx ny = std::max<idx>(4, (target_n + nx - 1) / nx);
    prob.n = nx * ny;
    prob.halo = nx;
    prob.slabs.resize(p);
    for (int r = 0; r < p; ++r) {
      const auto [begin, end] = strip_of(prob.n, p, r);
      const Csr slab = workloads::convection_diffusion_2d_rows(nx, ny, 10.0, 20.0, begin, end);
      prob.slabs[r] = {slab.n_rows, slab.nnz()};
    }
  }
  for (const SlabStats& s : prob.slabs) {
    prob.nnz_total += s.nnz;
    prob.rows_max = std::max(prob.rows_max, s.rows);
  }
  return prob;
}

/// Modeled results of one (problem, p) skeleton run.
struct ScalePoint {
  int p = 0;
  idx n = 0;
  nnz_t nnz = 0;
  idx rows_max = 0;
  double factor_s = 0.0;
  double trisolve_s = 0.0;
  double gmres_s = 0.0;
  double total_s = 0.0;
  std::uint64_t supersteps = 0;
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  int max_fanout = 0;
  double speedup = 0.0;     // strong sweeps only (vs the sweep's first point)
  double efficiency = 0.0;  // relative to the sweep's first point
};

/// Drive the machine through the pipeline's communication skeleton.
/// Per-rank charges come from the streamed slab stats; every message is a
/// real Machine send to a strip neighbor, so the sparse substrate carries
/// the traffic. Phase boundaries are read off the modeled clock, so the
/// phase seconds sum to the total exactly.
ScalePoint run_skeleton(sim::Machine& machine, const Problem& prob, int gmres_iters) {
  const int p = machine.nranks();
  const idx halo = prob.halo;
  constexpr idx kFill = 10;  // modeled ILUT fill per row (m of ILUT(m, t))
  sim::Metrics* const metrics = machine.metrics();
  const auto phase = [&](const char* name) {
    if (metrics != nullptr) {
      if (metrics->current_phase() != "") metrics->pop_phase();
      metrics->push_phase(name);
    }
  };
  const auto drain = [](sim::RankContext& ctx) {
    for (const sim::Message& msg : ctx.recv_all()) {
      ctx.charge_mem(msg.payload.size());
    }
  };
  const auto send_halo = [&](sim::RankContext& ctx, std::uint64_t bytes_per_peer, int tag) {
    const int r = ctx.rank();
    if (r > 0) ctx.send_bytes(r - 1, tag, std::vector<std::byte>(bytes_per_peer));
    if (r + 1 < p) ctx.send_bytes(r + 1, tag, std::vector<std::byte>(bytes_per_peer));
  };

  // --- Factorization: interior rows eliminate locally in one modeled
  // step; interface rows (the halo-coupled boundary strips) go through
  // MIS-style rounds, each a key exchange + a status exchange with the
  // strip neighbors and a commit collective, halving the remaining
  // interface set per level (DESIGN.md §5).
  phase("factor/interior");
  machine.step(
      [&](sim::RankContext& ctx) {
        const SlabStats& s = prob.slabs[ctx.rank()];
        ctx.charge_flops(static_cast<std::uint64_t>(s.nnz) * 2u * kFill);
        ctx.charge_mem(static_cast<std::uint64_t>(s.nnz) * 12u);
      },
      "scale/factor/interior");
  phase("factor/interface");
  for (idx remaining = halo; remaining > 0; remaining = remaining / 2) {
    const std::uint64_t key_bytes = static_cast<std::uint64_t>(remaining) * 4u;
    machine.step(
        [&](sim::RankContext& ctx) {
          drain(ctx);
          send_halo(ctx, key_bytes, /*tag=*/1);
          ctx.charge_flops(static_cast<std::uint64_t>(remaining) * 3u);
        },
        "scale/factor/mis-keys");
    machine.step(
        [&](sim::RankContext& ctx) {
          drain(ctx);
          send_halo(ctx, key_bytes, /*tag=*/2);
          ctx.charge_flops(static_cast<std::uint64_t>(remaining) * 2u * kFill);
        },
        "scale/factor/mis-status");
    // Drain the status exchange before the commit collective: a collective
    // superstep runs no rank bodies, so pending messages would cross its
    // barrier undrained (the SPMD checker rejects that, DESIGN.md §9).
    machine.step(drain, "scale/factor/mis-commit");
    machine.collective(8, "scale/factor/commit");
  }
  const double t_factor = machine.modeled_time();

  // --- Triangular solves: a level-scheduled sweep per factor; each level
  // forwards one halo plane of solution values to the downstream strip.
  phase("trisolve");
  const int sweep_levels =
      std::max(1, static_cast<int>(std::ceil(std::log2(static_cast<double>(halo) + 1.0))));
  for (int dir = 0; dir < 2; ++dir) {  // L then U sweep
    for (int level = 0; level < sweep_levels; ++level) {
      machine.step(
          [&](sim::RankContext& ctx) {
            drain(ctx);
            const int r = ctx.rank();
            const int to = dir == 0 ? r + 1 : r - 1;
            if (to >= 0 && to < p) {
              ctx.send_bytes(to, /*tag=*/3, std::vector<std::byte>(static_cast<std::size_t>(halo) * 8u));
            }
            const SlabStats& s = prob.slabs[r];
            ctx.charge_flops(static_cast<std::uint64_t>(s.nnz / sweep_levels) + 1u);
          },
          "scale/trisolve/level");
    }
  }
  machine.step(drain, "scale/trisolve/drain");
  const double t_trisolve = machine.modeled_time();

  // --- GMRES: per iteration one halo exchange, then the preconditioned
  // matvec (draining the halo), then two dot-product reductions. The
  // halo send and the matvec are separate supersteps so the inbox is
  // empty by the time the reduction collectives run (see §9 note above).
  phase("gmres");
  for (int iter = 0; iter < gmres_iters; ++iter) {
    machine.step(
        [&](sim::RankContext& ctx) {
          send_halo(ctx, static_cast<std::uint64_t>(halo) * 8u, /*tag=*/4);
        },
        "scale/gmres/halo");
    machine.step(
        [&](sim::RankContext& ctx) {
          drain(ctx);
          const SlabStats& s = prob.slabs[ctx.rank()];
          ctx.charge_flops(static_cast<std::uint64_t>(s.nnz) * 4u +
                           static_cast<std::uint64_t>(s.rows) * 2u);
        },
        "scale/gmres/spmv");
    machine.collective(8, "scale/gmres/dot");
    machine.collective(8, "scale/gmres/norm");
  }
  if (metrics != nullptr && metrics->current_phase() != "") metrics->pop_phase();

  ScalePoint point;
  point.p = p;
  point.n = prob.n;
  point.nnz = prob.nnz_total;
  point.rows_max = prob.rows_max;
  point.factor_s = t_factor;
  point.trisolve_s = t_trisolve - t_factor;
  point.gmres_s = machine.modeled_time() - t_trisolve;
  point.total_s = machine.modeled_time();
  point.supersteps = machine.supersteps();
  const sim::RankCounters totals = machine.total_counters();
  point.messages = totals.messages_sent;
  point.bytes = totals.bytes_sent;
  point.max_fanout = p > 2 ? 2 : p - 1;  // strip neighbors (p2p structure)
  return point;
}

void print_points(const char* mode, const std::vector<ScalePoint>& points) {
  std::printf("\n%-6s %6s %10s %12s %11s %11s %11s %11s %8s %8s\n", mode, "p", "n",
              "nnz", "factor_s", "trisolve_s", "gmres_s", "total_s", "speedup", "eff");
  for (const ScalePoint& pt : points) {
    std::printf("%-6s %6d %10d %12lld %11.4e %11.4e %11.4e %11.4e %8.2f %8.3f\n", "",
                pt.p, pt.n, static_cast<long long>(pt.nnz), pt.factor_s, pt.trisolve_s,
                pt.gmres_s, pt.total_s, pt.speedup, pt.efficiency);
  }
  std::fflush(stdout);
}

void write_point(std::FILE* f, const ScalePoint& pt, bool strong, bool last) {
  std::fprintf(f,
               "      {\"p\": %d, \"n\": %d, \"nnz\": %lld, \"rows_max\": %d,\n"
               "       \"modeled_factor_s\": %.17g, \"modeled_trisolve_s\": %.17g,\n"
               "       \"modeled_gmres_s\": %.17g, \"modeled_total_s\": %.17g,\n"
               "       \"supersteps\": %llu, \"messages\": %llu, \"bytes\": %llu, "
               "\"max_fanout\": %d,\n",
               pt.p, pt.n, static_cast<long long>(pt.nnz), pt.rows_max, pt.factor_s,
               pt.trisolve_s, pt.gmres_s, pt.total_s,
               static_cast<unsigned long long>(pt.supersteps),
               static_cast<unsigned long long>(pt.messages),
               static_cast<unsigned long long>(pt.bytes), pt.max_fanout);
  if (strong) {
    std::fprintf(f, "       \"speedup\": %.17g, \"efficiency\": %.17g}%s\n", pt.speedup,
                 pt.efficiency, last ? "" : ",");
  } else {
    std::fprintf(f, "       \"efficiency\": %.17g}%s\n", pt.efficiency, last ? "" : ",");
  }
}

/// Byte-compare streamed slabs against the dense generators at a small
/// size (the unit tests hold this too; --exact re-proves it in situ).
void run_exact_check() {
  const idx nx = 19, ny = 17;
  const Csr dense = workloads::convection_diffusion_2d(nx, ny, 10.0, 20.0);
  workloads::TorsoOptions opts;
  opts.nx = opts.ny = 10;
  opts.nz = 12;
  const Csr torso_dense = workloads::torso_fv_3d(opts);
  for (const int p : {3, 8}) {
    nnz_t at = 0;
    for (int r = 0; r < p; ++r) {
      const auto [begin, end] = strip_of(nx * ny, p, r);
      const Csr slab = workloads::convection_diffusion_2d_rows(nx, ny, 10.0, 20.0, begin, end);
      for (idx i = 0; i < slab.n_rows; ++i) {
        for (nnz_t k = slab.row_ptr[i]; k < slab.row_ptr[i + 1]; ++k, ++at) {
          PTILU_CHECK(slab.col_idx[k] == dense.col_idx[at] &&
                          slab.values[k] == dense.values[at],
                      "conv-diff slab mismatch at entry " << at);
        }
      }
    }
    PTILU_CHECK(at == dense.nnz(), "conv-diff slab nnz mismatch");
    at = 0;
    const idx tn = opts.nx * opts.ny * opts.nz;
    for (int r = 0; r < p; ++r) {
      const auto [begin, end] = strip_of(tn, p, r);
      const Csr slab = workloads::torso_fv_3d_rows(opts, begin, end);
      for (idx i = 0; i < slab.n_rows; ++i) {
        for (nnz_t k = slab.row_ptr[i]; k < slab.row_ptr[i + 1]; ++k, ++at) {
          PTILU_CHECK(slab.col_idx[k] == torso_dense.col_idx[at] &&
                          slab.values[k] == torso_dense.values[at],
                      "torso slab mismatch at entry " << at);
        }
      }
    }
    PTILU_CHECK(at == torso_dense.nnz(), "torso slab nnz mismatch");
  }
  std::printf("exact: streamed slabs byte-identical to dense generators (OK)\n");
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--help") {
      std::fputs(kUsage, stdout);
      return 0;
    }
  }
  const Cli cli(argc, argv);
  const bool smoke = cli.get_bool("smoke", false);
  std::vector<int> procs =
      cli.get_int_list("procs", smoke ? std::vector<int>{4, 16, 64}
                                      : std::vector<int>{64, 256, 1024, 4096});
  const idx target_n =
      static_cast<idx>(cli.get_int("n", smoke ? 4096 : 10000000));
  const std::string workload = cli.get_choice("workload", "g0", {"g0", "torso"});
  const int gmres_iters = static_cast<int>(cli.get_int("gmres-iters", smoke ? 3 : 10));
  const std::string json_path = cli.get_string("json", "");
  const std::string report_dir = cli.get_string("report-dir", "");
  const bool exact = cli.get_bool("exact", false);
  const sim::Machine::Options machine_opts = bench::machine_options_from_cli(cli);
  cli.check_all_consumed();
  PTILU_CHECK(!procs.empty(), "--procs must list at least one rank count");
  for (std::size_t i = 0; i < procs.size(); ++i) {
    PTILU_CHECK(procs[i] >= 1, "rank counts must be >= 1");
    PTILU_CHECK(i == 0 || procs[i] > procs[i - 1], "--procs must be ascending");
  }
  PTILU_CHECK(target_n >= procs.back(), "--n must be at least the largest p");

  std::printf("bench_scale: workload=%s n=%d procs=", workload.c_str(), target_n);
  for (std::size_t i = 0; i < procs.size(); ++i) {
    std::printf("%s%d", i == 0 ? "" : ",", procs[i]);
  }
  std::printf(" backend=%s%s\n", sim::backend_name(machine_opts.backend),
              smoke ? " (smoke)" : "");

  if (exact) run_exact_check();

  // --- Strong scaling: fixed n, growing p.
  std::vector<ScalePoint> strong;
  for (const int p : procs) {
    const Problem prob = build_problem(workload, target_n, p);
    sim::Machine machine(p, machine_opts);
    strong.push_back(run_skeleton(machine, prob, gmres_iters));
  }
  for (ScalePoint& pt : strong) {
    pt.speedup = strong.front().total_s / pt.total_s;
    pt.efficiency = pt.speedup * static_cast<double>(strong.front().p) / pt.p;
  }
  print_points("strong", strong);

  // --- Weak scaling: per-rank load fixed at the largest configuration's,
  // so n grows proportionally with p (n(p_max) == the strong sweep's n).
  std::vector<ScalePoint> weak;
  for (const int p : procs) {
    const idx n_weak = std::max<idx>(
        p, static_cast<idx>(static_cast<std::int64_t>(target_n) * p / procs.back()));
    const Problem prob = build_problem(workload, n_weak, p);
    sim::Machine machine(p, machine_opts);
    weak.push_back(run_skeleton(machine, prob, gmres_iters));
  }
  for (ScalePoint& pt : weak) {
    pt.efficiency = weak.front().total_s / pt.total_s;
  }
  print_points("weak", weak);

  // --- Metrics report for the largest strong point (report identities at
  // scale: scripts/check_report.py holds the v2 invariants at p=4096).
  if (!report_dir.empty()) {
    const int p = procs.back();
    sim::Machine::Options observed = machine_opts;
    observed.metrics = true;
    const Problem prob = build_problem(workload, target_n, p);
    sim::Machine machine(p, observed);
    run_skeleton(machine, prob, gmres_iters);
    const std::string label = workload + "_scale_p_" + std::to_string(p);
    const std::string path =
        report_dir + "/scale_" + bench::artifact_slug(label) + ".report.json";
    machine.metrics()->write_report_file(
        path, machine,
        {{"label", "\"" + label + "\""},
         {"harness", "\"bench_scale\""},
         {"procs", std::to_string(p)},
         {"n", std::to_string(prob.n)}});
    std::printf("report: %s\n", path.c_str());
  }

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    PTILU_CHECK(f != nullptr, "cannot open " << json_path << " for writing");
    std::fprintf(f, "{\n  \"schema\": \"ptilu-bench-scale-v1\",\n");
    std::fprintf(f, "  \"smoke\": %s,\n  \"workload\": \"%s\",\n", smoke ? "true" : "false",
                 workload.c_str());
    std::fprintf(f, "  \"backend\": \"%s\",\n  \"threads\": %d,\n  \"gmres_iters\": %d,\n",
                 sim::backend_name(machine_opts.backend), machine_opts.threads,
                 gmres_iters);
    std::fprintf(f, "  \"sweeps\": [\n    {\"mode\": \"strong\", \"points\": [\n");
    for (std::size_t i = 0; i < strong.size(); ++i) {
      write_point(f, strong[i], /*strong=*/true, i + 1 == strong.size());
    }
    std::fprintf(f, "    ]},\n    {\"mode\": \"weak\", \"points\": [\n");
    for (std::size_t i = 0; i < weak.size(); ++i) {
      write_point(f, weak[i], /*strong=*/false, i + 1 == weak.size());
    }
    std::fprintf(f, "    ]}\n  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
