// Shared pieces of the table/figure reproduction harnesses: the two test
// matrices (G0 and TORSO analogues — see DESIGN.md §1 for the
// substitutions), the paper's nine (m, t) factorization configurations,
// and small formatting helpers.
#pragma once

#include <cctype>
#include <cmath>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "ptilu/dist/distcsr.hpp"
#include "ptilu/graph/graph.hpp"
#include "ptilu/part/partition.hpp"
#include "ptilu/pilut/pilut.hpp"
#include "ptilu/sim/machine.hpp"
#include "ptilu/sim/metrics.hpp"
#include "ptilu/sim/trace.hpp"
#include "ptilu/sparse/csr.hpp"
#include "ptilu/support/cli.hpp"
#include "ptilu/support/table.hpp"
#include "ptilu/workloads/grids.hpp"
#include "ptilu/workloads/rhs.hpp"
#include "ptilu/workloads/torso.hpp"

namespace ptilu::bench {

/// One (m, t) configuration of Table 1/2/3. The paper sweeps
/// m in {5, 10, 20} x t in {1e-2, 1e-4, 1e-6}.
struct FactorConfig {
  idx m;
  real tau;
};

inline std::vector<FactorConfig> paper_configs() {
  std::vector<FactorConfig> configs;
  for (const real tau : {1e-2, 1e-4, 1e-6}) {
    for (const idx m : {5, 10, 20}) configs.push_back({m, tau});
  }
  return configs;
}

/// "ILUT(10,1e-4)" / "ILUT*(10,1e-4,2)" labels as in the paper's tables.
inline std::string config_label(const FactorConfig& config, idx cap_k) {
  std::string label = cap_k > 0 ? "ILUT*(" : "ILUT(";
  label += std::to_string(config.m);
  label += ',';
  label += format_sci(config.tau, 0);
  if (cap_k > 0) {
    label += ',';
    label += std::to_string(cap_k);
  }
  label += ')';
  return label;
}

/// Scale presets: --quick (CI-sized), default (fits the full sweep in
/// minutes on one host), --paper (the paper's problem sizes; slow because
/// the 128-way runs are simulated on one core).
struct Scale {
  idx g0_nx = 240, g0_ny = 240;      // paper scale: 57,600 unknowns
  idx torso_nx = 28, torso_ny = 28, torso_nz = 40;
};

inline Scale scale_from_cli(const Cli& cli) {
  Scale scale;
  if (cli.get_bool("quick", false)) {
    scale = {96, 96, 16, 16, 24};
  } else if (cli.get_bool("paper", false)) {
    scale = {240, 240, 56, 56, 78};  // TORSO analogue ~112k nodes
  }
  return scale;
}

struct TestMatrix {
  std::string name;
  Csr a;
};

inline TestMatrix build_g0(const Scale& scale) {
  // Centered-difference convection-diffusion: mild convection keeps the
  // matrix nonsymmetric so the threshold rules have real work to do.
  return {"G0", workloads::convection_diffusion_2d(scale.g0_nx, scale.g0_ny, 10.0, 20.0)};
}

inline TestMatrix build_torso(const Scale& scale) {
  workloads::TorsoOptions opts;
  opts.nx = scale.torso_nx;
  opts.ny = scale.torso_ny;
  opts.nz = scale.torso_nz;
  return {"TORSO", workloads::fem_torso_3d(opts).a};
}

/// Shared `--backend=<sequential|threads>` / `--threads=N` handling for the
/// harnesses. Defaults come from Machine::Options itself, i.e. from the
/// PTILU_BACKEND / PTILU_THREADS environment variables, so a CI job can
/// flip an entire harness without touching its command line; the flags
/// override the environment. Both backends produce bit-identical modeled
/// results (see DESIGN.md §10), so this only changes host wall-clock — and
/// the JSON reports record which backend ran, so cross-backend wall-clock
/// comparisons are refused by scripts/check_bench_json.py unless explicitly
/// requested.
inline sim::Machine::Options machine_options_from_cli(const Cli& cli) {
  sim::Machine::Options opts;
  const std::string backend = cli.get_choice(
      "backend", "", {"seq", "sequential", "serial", "thread", "threads", "threaded"});
  if (!backend.empty()) opts.backend = sim::parse_backend(backend);
  opts.threads = static_cast<int>(cli.get_int("threads", opts.threads));
  return opts;
}

/// Partition + distribute for a given processor count.
inline DistCsr distribute(const Csr& a, int nranks, std::uint64_t seed = 1) {
  const Graph g = graph_from_pattern(a);
  const Partition p = partition_kway(g, nranks, {.seed = seed});
  return DistCsr::create(a, p);
}

inline void print_header(const std::string& title, const TestMatrix& matrix) {
  const auto stats = workloads::matrix_stats(matrix.a);
  std::cout << "\n=== " << title << " — " << matrix.name << " ("
            << workloads::describe(stats) << ") ===\n";
}

/// File-name slug for per-run artifact paths ("G0 ILUT(10,1e-04) p=64" ->
/// "g0_ilut_10_1e_04__p_64").
inline std::string artifact_slug(const std::string& label) {
  std::string out;
  for (const char c : label) {
    out += std::isalnum(static_cast<unsigned char>(c)) != 0
               ? static_cast<char>(std::tolower(static_cast<unsigned char>(c)))
               : '_';
  }
  return out;
}

/// Shared `--trace` / `--trace-dir <dir>` handling for the table harnesses.
/// With `--trace`, each harness runs one extra *traced* pass over a
/// representative configuration and prints the per-phase modeled-time
/// breakdown (rollup only — no span storage). With `--trace-dir`, the
/// traced pass additionally records spans and writes a Chrome trace_event
/// JSON per run into the directory (which must exist). The measurement
/// sweeps themselves always run untraced, so reported totals are identical
/// with and without these flags.
class TraceReporter {
 public:
  TraceReporter(const Cli& cli, std::string prefix)
      : prefix_(std::move(prefix)), dir_(cli.get_string("trace-dir", "")) {
    enabled_ = cli.get_bool("trace", false) || !dir_.empty();
  }

  bool enabled() const { return enabled_; }

  /// Start tracing `machine` (rollups always; spans only when exporting).
  void attach(sim::Machine& machine) {
    trace_ = std::make_unique<sim::Trace>(
        sim::TraceOptions{.record_spans = !dir_.empty()});
    machine.attach_trace(trace_.get());
  }

  /// Print the phase table, check it sums to the machine's modeled time,
  /// optionally export the Chrome JSON, then detach and drop the trace.
  void report(sim::Machine& machine, const std::string& label) {
    machine.attach_trace(nullptr);
    if (trace_ == nullptr) return;
    std::cout << "\nPer-phase breakdown — " << label << ":\n";
    trace_->write_phase_table(std::cout);
    const double attributed = trace_->attributed_time();
    const double modeled = machine.modeled_time();
    const double rel =
        modeled > 0.0 ? std::abs(attributed - modeled) / modeled : 0.0;
    std::cout << "phase sum " << format_sci(attributed, 6) << " s vs modeled "
              << format_sci(modeled, 6) << " s — "
              << (rel <= 0.01 ? "OK" : "MISMATCH") << " (rel err "
              << format_sci(rel, 2) << ")\n";
    if (!dir_.empty()) {
      const std::string path =
          dir_ + "/" + prefix_ + "_" + artifact_slug(label) + ".trace.json";
      trace_->write_chrome_trace_file(path);
      std::cout << "chrome trace: " << path << "\n";
    }
    trace_.reset();
  }

 private:
  std::string prefix_;
  std::string dir_;
  bool enabled_ = false;
  std::unique_ptr<sim::Trace> trace_;
};

/// Shared `--report` / `--report-dir <dir>` handling: the metrics
/// counterpart of TraceReporter. With `--report`, the harness's observed
/// rerun collects sim::Metrics and prints the critical-path/straggler
/// breakdown; with `--report-dir`, it additionally writes the versioned
/// `ptilu-report-v2` JSON (validated by scripts/check_report.py) into the
/// directory (which must exist). Like tracing, only the observed rerun is
/// instrumented — the measurement sweeps are unaffected.
class ReportWriter {
 public:
  ReportWriter(const Cli& cli, std::string prefix)
      : prefix_(std::move(prefix)), dir_(cli.get_string("report-dir", "")) {
    enabled_ = cli.get_bool("report", false) || !dir_.empty();
  }

  bool enabled() const { return enabled_; }

  /// Print the straggler table and, with --report-dir, write the JSON
  /// report. `run_info` pairs are (key, raw JSON value) embedded verbatim
  /// under the report's "run" object; a "label" entry is prepended.
  void report(sim::Machine& machine, const std::string& label,
              std::vector<std::pair<std::string, std::string>> run_info = {}) {
    sim::Metrics* const metrics = machine.metrics();
    if (!enabled_ || metrics == nullptr) return;
    std::cout << "\nCritical-path breakdown — " << label << ":\n";
    metrics->write_straggler_table(std::cout, machine);
    if (!dir_.empty()) {
      run_info.insert(run_info.begin(), {"label", "\"" + label + "\""});
      const std::string path =
          dir_ + "/" + prefix_ + "_" + artifact_slug(label) + ".report.json";
      metrics->write_report_file(path, machine, run_info);
      std::cout << "run report: " << path << "\n";
    }
  }

 private:
  std::string prefix_;
  std::string dir_;
  bool enabled_ = false;
};

/// The harnesses' combined observability flag set: --trace/--trace-dir
/// (per-phase breakdown + Chrome trace) and --report/--report-dir
/// (critical-path metrics + machine-readable run report). When any flag is
/// present the harness repeats one representative configuration on a
/// machine built from machine_options() with attach() applied, then calls
/// report(); the measurement sweeps themselves stay uninstrumented.
class Observability {
 public:
  Observability(const Cli& cli, std::string prefix)
      : tracer_(cli, prefix), reporter_(cli, std::move(prefix)) {}

  bool enabled() const { return tracer_.enabled() || reporter_.enabled(); }

  /// Options for the observed rerun's machine: `base` plus metrics
  /// collection when --report/--report-dir asked for it.
  sim::Machine::Options machine_options(sim::Machine::Options base = {}) const {
    if (reporter_.enabled()) base.metrics = true;
    return base;
  }

  void attach(sim::Machine& machine) {
    if (tracer_.enabled()) tracer_.attach(machine);
  }

  void report(sim::Machine& machine, const std::string& label,
              std::vector<std::pair<std::string, std::string>> run_info = {}) {
    if (tracer_.enabled()) tracer_.report(machine, label);
    reporter_.report(machine, label, std::move(run_info));
  }

 private:
  TraceReporter tracer_;
  ReportWriter reporter_;
};

}  // namespace ptilu::bench
