// Ablation: the ILUT* reduced-row cap factor k (§4.2, §7). The paper uses
// k = 2 and calls for "a more comprehensive study ... for different values
// of k"; this harness provides it. For each k we report the factorization
// time, the number of independent sets, the densest reduced row, and the
// preconditioning quality (GMRES(50) matrix-vector products).
#include <iostream>

#include "bench_common.hpp"
#include "ptilu/krylov/gmres.hpp"
#include "ptilu/sim/machine.hpp"
#include "ptilu/support/timer.hpp"

namespace ptilu::bench {
namespace {

void run_matrix(const TestMatrix& matrix, int nranks, const FactorConfig& config,
                const std::vector<int>& kvalues, Observability& obs) {
  print_header("Ablation: ILUT* cap factor k", matrix);
  std::cout << "base configuration " << config_label(config, 0) << ", p=" << nranks
            << "; k=0 row is plain (uncapped) ILUT\n";
  const DistCsr dist = distribute(matrix.a, nranks);
  const RealVec b = workloads::rhs_all_ones_solution(matrix.a);

  Table table({"k", "factor time", "levels q", "max reduced row", "nnz(L)+nnz(U)",
               "GMRES(50) NMV"});
  for (const int k : kvalues) {
    sim::Machine machine(nranks);
    const PilutResult result = pilut_factor(
        machine, dist,
        {.m = config.m, .tau = config.tau, .cap_k = k, .pivot_rel = 1e-12});
    RealVec x(matrix.a.n_rows, 0.0);
    const GmresResult gmres_result =
        gmres(matrix.a, IluPreconditioner(result.factors, result.schedule.newnum), b, x,
              {.restart = 50, .max_matvecs = 20000});
    table.row()
        .cell(static_cast<long long>(k))
        .cell(result.stats.time_total, 4)
        .cell(static_cast<long long>(result.stats.levels))
        .cell(static_cast<long long>(result.stats.max_reduced_row))
        .cell(static_cast<long long>(result.factors.l.nnz() + result.factors.u.nnz()))
        .cell(static_cast<long long>(gmres_result.converged ? gmres_result.matvecs : -1));
  }
  table.print(std::cout);

  // Observed rerun of the middle cap value (--trace/--report flags).
  if (obs.enabled()) {
    const int k = kvalues[kvalues.size() / 2];
    sim::Machine machine(nranks, obs.machine_options());
    obs.attach(machine);
    pilut_factor(machine, dist,
                 {.m = config.m, .tau = config.tau, .cap_k = k, .pivot_rel = 1e-12});
    obs.report(machine,
               matrix.name + " k=" + std::to_string(k) + " p=" + std::to_string(nranks),
               {{"harness", "\"ablation_kcap\""},
                {"matrix", "\"" + matrix.name + "\""},
                {"procs", std::to_string(nranks)}});
  }
}

}  // namespace
}  // namespace ptilu::bench

int main(int argc, char** argv) {
  using namespace ptilu;
  using namespace ptilu::bench;
  const Cli cli(argc, argv);
  const Scale scale = scale_from_cli(cli);
  const int nranks = static_cast<int>(cli.get_int("procs", 64));
  const idx m = static_cast<idx>(cli.get_int("m", 10));
  const real tau = cli.get_double("tau", 1e-4);
  auto kvalues = cli.get_int_list("kvalues", {1, 2, 3, 4, 0});
  Observability obs(cli, "ablation_kcap");
  cli.check_all_consumed();

  WallTimer timer;
  run_matrix(build_g0(scale), nranks, {m, tau}, kvalues, obs);
  run_matrix(build_torso(scale), nranks, {m, tau}, kvalues, obs);
  std::cout << "\n[ablation_kcap wall time: " << format_fixed(timer.seconds(), 1) << "s]\n";
  return 0;
}
