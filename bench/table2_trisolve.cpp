// Reproduces Table 2 (forward+backward substitution time on TORSO for all
// 18 factorizations, plus the matrix-vector product row), Figure 6 (solve
// speedup relative to 16 processors), and the §6 MFLOP-rate epilogue
// comparing the triangular solves with SpMV. Modeled times, as in Table 1.
#include <iostream>
#include <map>

#include "bench_common.hpp"
#include "ptilu/pilut/trisolve_dist.hpp"
#include "ptilu/sim/machine.hpp"
#include "ptilu/support/timer.hpp"

namespace ptilu::bench {
namespace {

void run_matrix(const TestMatrix& matrix, const std::vector<int>& procs,
                const std::vector<FactorConfig>& configs, idx star_k,
                Observability& obs) {
  print_header("Table 2: forward+backward substitution time (modeled seconds)", matrix);

  std::map<int, DistCsr> dists;
  std::map<int, Halo> halos;
  for (const int p : procs) {
    dists.emplace(p, distribute(matrix.a, p));
    halos.emplace(p, Halo::build(dists.at(p)));
  }

  std::vector<std::string> headers = {"Factorization"};
  for (const int p : procs) headers.push_back("p=" + std::to_string(p));
  Table table(headers);
  Table speedup_table(headers);
  const RealVec b(matrix.a.n_rows, 1.0);
  RealVec x(matrix.a.n_rows), y(matrix.a.n_rows);

  struct SolveData {
    double time = 0;
    std::uint64_t flops = 0;
  };
  std::map<std::pair<std::string, int>, SolveData> solves;

  for (const idx cap_k : {idx{0}, star_k}) {
    for (const auto& config : configs) {
      const std::string label = config_label(config, cap_k);
      auto row = table.row();
      row.cell(label);
      auto srow = speedup_table.row();
      srow.cell(label);
      double base_time = 0;
      for (const int p : procs) {
        sim::Machine machine(p);
        const PilutResult result = pilut_factor(
            machine, dists.at(p),
            {.m = config.m, .tau = config.tau, .cap_k = cap_k, .pivot_rel = 1e-12});
        const DistTriangularSolver solver(result.factors, result.schedule);
        machine.reset();
        solver.apply(machine, b, x);
        solves[{label, p}] = {machine.modeled_time(), machine.total_counters().flops};
        if (p == procs.front()) base_time = machine.modeled_time();
        row.cell(machine.modeled_time(), 5);
        srow.cell(base_time / machine.modeled_time(), 2);
      }
    }
  }
  // Matrix-vector product row (the paper's last row of Table 2).
  {
    auto row = table.row();
    row.cell("Matrix-Vector");
    std::map<int, SolveData> spmv_data;
    for (const int p : procs) {
      sim::Machine machine(p);
      dist_spmv(machine, dists.at(p), halos.at(p), b, y);
      spmv_data[p] = {machine.modeled_time(), machine.total_counters().flops};
      row.cell(machine.modeled_time(), 5);
    }
    table.print(std::cout);

    std::cout << "\nFigure 6: substitution speedup relative to p=" << procs.front() << "\n";
    speedup_table.print(std::cout);

    // §6 epilogue: per-processor MFLOP rates of trisolve vs SpMV for the
    // densest configuration, at the smallest and largest processor counts.
    const std::string dense_plain = config_label(configs.back(), 0);
    const std::string dense_star = config_label(configs.back(), star_k);
    std::cout << "\nMFLOP-rate comparison (per processor), config "
              << dense_plain << " / " << dense_star << ":\n";
    Table mflops({"p", "SpMV Mflop/s", "ILUT solve", "ILUT* solve",
                  "ILUT slowdown", "ILUT* slowdown"});
    for (const int p : {procs.front(), procs.back()}) {
      const auto rate = [&](const SolveData& d) {
        return d.time > 0 ? static_cast<double>(d.flops) / d.time / 1e6 / p : 0.0;
      };
      const double spmv_rate = rate(spmv_data[p]);
      const double plain_rate = rate(solves[{dense_plain, p}]);
      const double star_rate = rate(solves[{dense_star, p}]);
      mflops.row()
          .cell(static_cast<long long>(p))
          .cell(spmv_rate, 1)
          .cell(plain_rate, 1)
          .cell(star_rate, 1)
          .cell(plain_rate > 0 ? spmv_rate / plain_rate : 0.0, 2)
          .cell(star_rate > 0 ? spmv_rate / star_rate : 0.0, 2);
    }
    mflops.print(std::cout);
  }

  // Optional observed rerun of one substitution: factor on a scratch
  // machine, then instrument a fresh machine for just the forward+backward
  // solve so the breakdown covers only the substitution.
  if (obs.enabled()) {
    const FactorConfig config = configs[configs.size() / 2];
    const int p = procs.back();
    sim::Machine factor_machine(p);
    const PilutResult result = pilut_factor(
        factor_machine, dists.at(p),
        {.m = config.m, .tau = config.tau, .cap_k = 0, .pivot_rel = 1e-12});
    const DistTriangularSolver solver(result.factors, result.schedule);
    sim::Machine machine(p, obs.machine_options());
    obs.attach(machine);
    solver.apply(machine, b, x);
    obs.report(machine,
               matrix.name + " solve " + config_label(config, 0) + " p=" +
                   std::to_string(p),
               {{"harness", "\"table2\""},
                {"matrix", "\"" + matrix.name + "\""},
                {"procs", std::to_string(p)}});
  }
}

}  // namespace
}  // namespace ptilu::bench

int main(int argc, char** argv) {
  using namespace ptilu;
  using namespace ptilu::bench;
  const Cli cli(argc, argv);
  const Scale scale = scale_from_cli(cli);
  const auto procs = cli.get_int_list("procs", {16, 32, 64, 128});
  const idx star_k = static_cast<idx>(cli.get_int("k", 2));
  const bool with_g0 = cli.get_bool("with-g0", false);
  Observability obs(cli, "table2");
  cli.check_all_consumed();

  const auto configs = paper_configs();
  WallTimer timer;
  // The paper's Table 2 reports TORSO only; --with-g0 adds the G0 series.
  run_matrix(build_torso(scale), procs, configs, star_k, obs);
  if (with_g0) run_matrix(build_g0(scale), procs, configs, star_k, obs);
  std::cout << "\n[table2 harness wall time: " << format_fixed(timer.seconds(), 1)
            << "s]\n";
  return 0;
}
